/**
 * @file
 * kd-tree builder invariants and traversal correctness (property-swept
 * against brute force).
 */

#include <gtest/gtest.h>

#include <random>

#include "rt/kdtree.hpp"
#include "rt/scenes.hpp"

using namespace uksim::rt;

namespace {

std::vector<Triangle>
randomTriangles(int n, uint32_t seed, float extent = 10.0f)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> d(-extent, extent);
    std::uniform_real_distribution<float> s(0.05f, 1.0f);
    std::vector<Triangle> tris;
    for (int i = 0; i < n; i++) {
        Vec3 p{d(rng), d(rng), d(rng)};
        Vec3 e1{s(rng), s(rng), -s(rng)};
        Vec3 e2{-s(rng), s(rng), s(rng)};
        tris.push_back({p, p + e1, p + e2});
    }
    return tris;
}

TEST(KdTree, EmptyScene)
{
    KdTree tree = KdTree::build({});
    Ray r;
    r.org = {0, 0, 0};
    r.dir = {1, 0, 0};
    EXPECT_FALSE(tree.intersect(r).valid());
}

TEST(KdTree, SingleTriangle)
{
    KdTree tree = KdTree::build({{{0, 0, 5}, {2, 0, 5}, {0, 2, 5}}});
    Ray r;
    r.org = {0.5f, 0.5f, 0};
    r.dir = {0, 0, 1};
    Hit h = tree.intersect(r);
    ASSERT_TRUE(h.valid());
    EXPECT_EQ(h.triId, 0);
    EXPECT_FLOAT_EQ(h.t, 5.0f);
}

TEST(KdTree, BuilderInvariants)
{
    auto tris = randomTriangles(2000, 42);
    KdTree tree = KdTree::build(tris);
    const auto &nodes = tree.nodes();
    ASSERT_FALSE(nodes.empty());

    // Every internal node's children exist, are consecutive, and its
    // split lies within the scene bounds along its axis.
    uint64_t leafRefs = 0;
    uint32_t leaves = 0;
    for (size_t i = 0; i < nodes.size(); i++) {
        const KdNode &n = nodes[i];
        if (n.leaf) {
            leaves++;
            leafRefs += n.primCount;
            ASSERT_LE(n.firstPrim + n.primCount,
                      tree.primIndices().size());
            for (uint32_t k = 0; k < n.primCount; k++) {
                ASSERT_LT(tree.primIndices()[n.firstPrim + k],
                          tris.size());
            }
        } else {
            ASSERT_LT(n.left + 1, nodes.size());
            ASSERT_GT(n.left, i);   // children come after the parent
            EXPECT_GE(n.split, tree.bounds().lo[n.axis]);
            EXPECT_LE(n.split, tree.bounds().hi[n.axis]);
        }
    }
    KdTreeStats s = tree.stats();
    EXPECT_EQ(s.nodeCount, nodes.size());
    EXPECT_EQ(s.leafCount, leaves);
    EXPECT_EQ(s.primRefs, leafRefs);
    EXPECT_GT(s.maxDepth, 2u);
    EXPECT_GT(s.avgLeafPrims, 0.0);

    // Node count is odd (full binary tree) and leaves = internals + 1.
    EXPECT_EQ(s.leafCount, s.nodeCount - s.leafCount + 1);
}

TEST(KdTree, EveryTriangleIsReachable)
{
    auto tris = randomTriangles(500, 7);
    KdTree tree = KdTree::build(tris);
    std::vector<bool> seen(tris.size(), false);
    for (uint32_t p : tree.primIndices())
        seen[p] = true;
    for (size_t i = 0; i < tris.size(); i++)
        EXPECT_TRUE(seen[i]) << "triangle " << i << " not in any leaf";
}

class KdTraversalProperty : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(KdTraversalProperty, MatchesBruteForce)
{
    const uint32_t seed = GetParam();
    auto tris = randomTriangles(600, seed);
    KdTree tree = KdTree::build(tris);

    std::mt19937 rng(seed * 977 + 1);
    std::uniform_real_distribution<float> d(-12.0f, 12.0f);
    int hits = 0;
    for (int i = 0; i < 800; i++) {
        Ray r;
        r.org = {d(rng), d(rng), d(rng)};
        r.dir = {d(rng), d(rng), d(rng)};
        if (std::fabs(r.dir.x) < 1e-3f || std::fabs(r.dir.y) < 1e-3f ||
            std::fabs(r.dir.z) < 1e-3f) {
            continue;   // avoid near-axis NaN corners in this sweep
        }
        Hit ours = tree.intersect(r);
        Hit oracle = tree.intersectBruteForce(r);
        ASSERT_EQ(ours.valid(), oracle.valid())
            << "seed " << seed << " ray " << i;
        if (ours.valid()) {
            hits++;
            // The same nearest triangle (or an exact t tie).
            if (ours.triId != oracle.triId)
                EXPECT_EQ(ours.t, oracle.t);
            else
                EXPECT_EQ(ours.t, oracle.t);
        }
    }
    EXPECT_GT(hits, 40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KdTraversalProperty,
                         ::testing::Values(11u, 23u, 37u, 59u, 71u));

TEST(KdTree, CountersAccumulate)
{
    auto tris = randomTriangles(300, 5);
    KdTree tree = KdTree::build(tris);
    TraversalCounters c;
    Ray r;
    r.org = {-15, 0, 0};
    r.dir = {1, 0.01f, 0.01f};
    tree.intersect(r, c);
    EXPECT_GT(c.downTraversals, 0u);
    EXPECT_GT(c.leavesVisited, 0u);
}

TEST(KdTree, LeafTargetRespectedWhereSplitsHelp)
{
    auto tris = randomTriangles(1000, 99);
    KdTree::BuildParams params;
    params.leafTarget = 4;
    params.maxDepth = 30;
    KdTree tree = KdTree::build(tris, params);
    KdTreeStats s = tree.stats();
    // Average leaf occupancy should be small for well-spread geometry.
    EXPECT_LT(s.avgLeafPrims, 16.0);
    EXPECT_LE(s.maxDepth, 31u);
}

TEST(KdTree, DeterministicBuild)
{
    auto tris = randomTriangles(400, 13);
    KdTree a = KdTree::build(tris);
    KdTree b = KdTree::build(tris);
    ASSERT_EQ(a.nodes().size(), b.nodes().size());
    EXPECT_EQ(a.primIndices(), b.primIndices());
}

TEST(KdTree, SceneRaysFromCameraMatchBruteForce)
{
    // The sweep the simulator relies on: primary rays of a real scene.
    SceneParams p;
    p.detail = 1;
    p.imageWidth = 24;
    p.imageHeight = 24;
    Scene scene = makeConference(p);
    KdTree tree = KdTree::build(scene.triangles);
    for (int y = 0; y < 24; y += 3) {
        for (int x = 0; x < 24; x += 3) {
            Ray r = scene.camera.ray(x, y);
            Hit ours = tree.intersect(r);
            Hit oracle = tree.intersectBruteForce(r);
            ASSERT_EQ(ours.valid(), oracle.valid())
                << "pixel " << x << "," << y;
            if (ours.valid()) {
                EXPECT_EQ(ours.t, oracle.t);
            }
        }
    }
}

} // namespace
