/**
 * @file
 * Epoch-based decoupled cycle engine: each SM advances on a local clock
 * to a conservative horizon, deferred memory accesses replay in global
 * (cycle, SM-id) order, and the coordinator serializes grid fills and
 * fault application at exact cycles. The contract mirrors fast-forward:
 * every observable — SimStats, fault records, outcomes, flight-recorder
 * dumps — is bit-identical to the lockstep engine on clean runs, across
 * host thread counts, fast-forward settings, fault policies and
 * runUntil chunking. Only EpochStats (how the run was simulated) may
 * differ.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "simt/assembler.hpp"
#include "simt/gpu.hpp"
#include "test_common.hpp"

using namespace uksim;

namespace {

/** Memory-bound: one DRAM round trip per warp, then a dependent store. */
const char kMemRoundTrips[] = R"(
    .entry main
    main:
        mov.u32 r2, %tid;
        shl.u32 r1, r2, 2;
        ld.global.u32 r0, [r1+0];
        add.u32 r0, r0, r2;
        st.global.u32 [r1+0], r0;
        ld.global.u32 r3, [r1+0];
        exit;
)";

/** Atomics exercise the operand-snapshot path of the deferred replay. */
const char kAtomics[] = R"(
    .entry main
    main:
        mov.u32 r1, 0;
        atom.add.u32 r2, [r1+0], 1;
        atom.add.u32 r3, [r1+4], r2;
        exit;
)";

/** Spawn + global memory: formation, FIFO pops and drain flushes. */
const char kSpawnMem[] = R"(
    .entry main
    .microkernel mk
    .spawn_state 16
    main:
        mov.u32 r5, %spawnaddr;
        mov.u32 r2, %tid;
        shl.u32 r1, r2, 2;
        ld.global.u32 r0, [r1+0];
        spawn mk, r5;
        exit;
    mk:
        mov.u32 r2, %tid;
        shl.u32 r1, r2, 2;
        ld.global.u32 r0, [r1+0];
        exit;
)";

/** Lane-dependent out-of-bounds load: a guest fault mid-run. */
const char kFaulting[] = R"(
    .entry main
    main:
        mov.u32 r2, %tid;
        shl.u32 r1, r2, 2;
        ld.global.u32 r0, [r1+0];
        mov.u32 r1, 4026531840;
        ld.global.u32 r0, [r1+0];
        exit;
)";

struct SimRun {
    RunOutcome outcome = RunOutcome::Completed;
    std::vector<SimFault> faults;
    SimStats stats;
    std::string dump;
    EpochStats epoch;
    bool epochUsed = false;
    uint64_t cycle = 0;
};

/**
 * The "fast_forward" dump block reports how the engine ran, not what it
 * simulated; the epoch engine produces different (equivalent) jump
 * patterns. Remove it before comparing dumps for bit-identity.
 */
std::string
stripFastForwardBlock(std::string dump)
{
    const size_t start = dump.find("  \"fast_forward\": ");
    if (start == std::string::npos)
        return dump;
    const size_t end = dump.find('\n', start);
    dump.erase(start, end == std::string::npos ? std::string::npos
                                               : end - start + 1);
    return dump;
}

SimRun
runProgram(const char *source, const GpuConfig &cfg, uint32_t threads,
           uint64_t chunk = 0)
{
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(source));
    gpu.mallocGlobal(4096);
    gpu.launch(threads);
    try {
        if (chunk == 0) {
            gpu.run();
        } else {
            // Chunked pause/resume: every runUntil boundary is an epoch
            // horizon cap and must land on the exact cycle.
            uint64_t stop = chunk;
            while (!gpu.finished() && gpu.cycle() < cfg.maxCycles &&
                   gpu.outcome() != RunOutcome::Deadlock) {
                gpu.runUntil(stop);
                if (gpu.cycle() < stop)
                    break;   // halted early (fault policy)
                stop += chunk;
            }
        }
    } catch (const GuestFault &) {
        // Throw policy: fault recorded before the throw.
    }
    SimRun r;
    r.outcome = gpu.outcome();
    r.faults = gpu.faults();
    r.stats = gpu.stats();
    r.epoch = gpu.epochStats();
    r.epochUsed = gpu.epochEligible();
    r.cycle = gpu.cycle();
    std::ostringstream os;
    gpu.dumpState(os);
    r.dump = os.str();
    return r;
}

void
expectSameRun(const SimRun &a, const SimRun &b, const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.cycle, b.cycle);
    EXPECT_TRUE(a.stats == b.stats);
    ASSERT_EQ(a.faults.size(), b.faults.size());
    for (size_t i = 0; i < a.faults.size(); i++) {
        EXPECT_EQ(a.faults[i].code, b.faults[i].code) << "fault " << i;
        EXPECT_EQ(a.faults[i].cycle, b.faults[i].cycle) << "fault " << i;
        EXPECT_EQ(a.faults[i].smId, b.faults[i].smId) << "fault " << i;
        EXPECT_EQ(a.faults[i].pc, b.faults[i].pc) << "fault " << i;
    }
    EXPECT_EQ(stripFastForwardBlock(a.dump), stripFastForwardBlock(b.dump));
}

/** Neutralize the CI matrix's env overrides; tests pin the knobs. */
class Epoch : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        saveEnv("UKSIM_THREADS");
        saveEnv("UKSIM_FASTFWD");
        saveEnv("UKSIM_EPOCHS");
        config_ = test::smallConfig();
        config_.maxCycles = 500'000;
    }

    void TearDown() override
    {
        for (const auto &[name, value] : saved_) {
            if (value.has_value())
                setenv(name.c_str(), value->c_str(), 1);
            else
                unsetenv(name.c_str());
        }
    }

    GpuConfig config_;

  private:
    void saveEnv(const char *name)
    {
        const char *env = std::getenv(name);
        saved_.emplace_back(name, env ? std::optional<std::string>(env)
                                      : std::nullopt);
        unsetenv(name);
    }

    std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

// ---------------------------------------------------------------------
// Epoch vs lockstep bit-identity on clean workloads. This is also the
// horizon-overshoot regression: if an epoch ever ran an SM past a cycle
// where a DRAM response, spawn flush or grid fill should have acted,
// the stall attribution, occupancy series or memory image would drift.
// ---------------------------------------------------------------------

TEST_F(Epoch, MatchesLockstepOnCleanWorkloads)
{
    for (const char *prog : {kMemRoundTrips, kAtomics, kSpawnMem}) {
        for (bool ff : {false, true}) {
            GpuConfig lock = config_;
            lock.epochEngine = false;
            lock.fastForward = ff;
            GpuConfig ep = config_;
            ep.epochEngine = true;
            ep.fastForward = ff;
            SimRun a = runProgram(prog, lock, 256);
            SimRun b = runProgram(prog, ep, 256);
            EXPECT_FALSE(a.epochUsed);
            EXPECT_TRUE(b.epochUsed);
            expectSameRun(a, b,
                          std::string("epoch-vs-lockstep ff=") +
                              (ff ? "on" : "off"));
        }
    }
}

// ---------------------------------------------------------------------
// Determinism matrix: threads x fast-forward x fault policy x chunking.
// Reference leg is threads=1, ff=off, unchunked, epoch engine on.
// ---------------------------------------------------------------------

TEST_F(Epoch, DeterminismMatrix)
{
    for (const char *prog : {kMemRoundTrips, kSpawnMem}) {
        GpuConfig ref = config_;
        ref.epochEngine = true;
        ref.fastForward = false;
        ref.hostThreads = 1;
        SimRun base = runProgram(prog, ref, 256);
        ASSERT_EQ(base.outcome, RunOutcome::Completed);
        for (int threads : {1, 2, 4}) {
            for (bool ff : {false, true}) {
                for (uint64_t chunk : {uint64_t{0}, uint64_t{97}}) {
                    GpuConfig cfg = ref;
                    cfg.hostThreads = threads;
                    cfg.fastForward = ff;
                    SimRun r = runProgram(prog, cfg, 256, chunk);
                    // FF-off pins the engine-side skip counters at
                    // zero; the functional bits never move.
                    expectSameRun(base, r,
                                  "threads=" + std::to_string(threads) +
                                      " ff=" + (ff ? "on" : "off") +
                                      " chunk=" + std::to_string(chunk));
                }
            }
        }
    }
}

TEST_F(Epoch, FaultPolicyDeterminism)
{
    for (FaultPolicy policy : {FaultPolicy::Throw, FaultPolicy::Trap,
                               FaultPolicy::HaltGrid}) {
        GpuConfig ref = config_;
        ref.faultPolicy = policy;
        ref.hostThreads = 1;
        SimRun base = runProgram(kFaulting, ref, 256);
        ASSERT_FALSE(base.faults.empty());
        for (int threads : {2, 4}) {
            for (bool ff : {false, true}) {
                GpuConfig cfg = ref;
                cfg.hostThreads = threads;
                cfg.fastForward = ff;
                SimRun r = runProgram(kFaulting, cfg, 256);
                expectSameRun(base, r,
                              "policy=" + std::to_string(int(policy)) +
                                  " threads=" + std::to_string(threads) +
                                  " ff=" + (ff ? "on" : "off"));
            }
        }
    }
}

// Trap-policy faulted runs complete the grid; epoch and lockstep agree
// on every observable there (the run ends clean), pinning the fault
// cycle/PC attribution of the deferred-replay path.
TEST_F(Epoch, TrapFaultAttributionMatchesLockstep)
{
    GpuConfig lock = config_;
    lock.faultPolicy = FaultPolicy::Trap;
    lock.epochEngine = false;
    GpuConfig ep = lock;
    ep.epochEngine = true;
    SimRun a = runProgram(kFaulting, lock, 256);
    SimRun b = runProgram(kFaulting, ep, 256);
    ASSERT_FALSE(a.faults.empty());
    expectSameRun(a, b, "trap epoch-vs-lockstep");
}

// ---------------------------------------------------------------------
// Eligibility and fallback.
// ---------------------------------------------------------------------

TEST_F(Epoch, WatchdogConfigFallsBackToLockstep)
{
    GpuConfig cfg = config_;
    cfg.watchdogCycles = 1000;
    Gpu gpu(cfg);
    EXPECT_TRUE(gpu.epochEngineEnabled());
    EXPECT_FALSE(gpu.epochEligible());
    // The run still works (lockstep path) and records no epochs.
    gpu.loadProgram(assemble(kMemRoundTrips));
    gpu.mallocGlobal(4096);
    gpu.launch(64);
    gpu.run();
    EXPECT_EQ(gpu.outcome(), RunOutcome::Completed);
    EXPECT_EQ(gpu.epochStats().epochs, 0u);
}

TEST_F(Epoch, IdealMemoryFallsBackToLockstep)
{
    GpuConfig cfg = config_;
    cfg.idealMemory = true;
    Gpu gpu(cfg);
    EXPECT_FALSE(gpu.epochEligible());
}

TEST_F(Epoch, EnvOverrideControlsTheSwitch)
{
    setenv("UKSIM_EPOCHS", "0", 1);
    SimRun off = runProgram(kMemRoundTrips, config_, 64);
    EXPECT_FALSE(off.epochUsed);
    EXPECT_EQ(off.epoch.epochs, 0u);
    setenv("UKSIM_EPOCHS", "1", 1);
    SimRun on = runProgram(kMemRoundTrips, config_, 64);
    EXPECT_TRUE(on.epochUsed);
    EXPECT_GT(on.epoch.epochs, 0u);
    unsetenv("UKSIM_EPOCHS");
    expectSameRun(off, on, "env off vs on");
}

// ---------------------------------------------------------------------
// Observability: the perf claim itself. A memory-bound workload must
// cover many cycles per synchronization epoch (epochs/cycle < 1), with
// the horizon-limiter histogram and wall-time split populated.
// ---------------------------------------------------------------------

TEST_F(Epoch, MemoryBoundRunNeedsFewEpochs)
{
    SimRun r = runProgram(kMemRoundTrips, config_, 256);
    ASSERT_TRUE(r.epochUsed);
    ASSERT_GT(r.epoch.epochs, 0u);
    EXPECT_GT(r.epoch.cyclesTotal, r.epoch.epochs)
        << "mean epoch length must exceed one cycle";
    EXPECT_GT(r.epoch.maxEpochCycles, 1u);
    // Limiter histogram accounts for every epoch.
    EXPECT_EQ(r.epoch.capMemLatency + r.epoch.capRunStop +
                  r.epoch.capMaxCycles + r.epoch.capFinish +
                  r.epoch.capHalt,
              r.epoch.epochs);
    // The finish epoch stops the clock exactly where lockstep exits.
    EXPECT_GE(r.epoch.capFinish, 1u);
}

} // namespace
