/**
 * @file
 * Liveness / dead-definition tests: dead ALU results and scalar loads
 * are reported, loop-carried and guarded definitions are not, effectful
 * instructions are never "dead", and the verifier surfaces the lint as
 * a `dead-def` warning.
 */

#include <gtest/gtest.h>

#include "simt/analysis/liveness.hpp"
#include "simt/assembler.hpp"
#include "simt/cfg.hpp"
#include "simt/verifier.hpp"

using namespace uksim;
using namespace uksim::analysis;

namespace {

LivenessResult
analyze(const Program &p)
{
    Cfg cfg(p);
    return analyzeLiveness(p, cfg);
}

const DeadDef *
deadAt(const LivenessResult &r, uint32_t pc)
{
    for (const DeadDef &d : r.deadDefs) {
        if (d.pc == pc)
            return &d;
    }
    return nullptr;
}

TEST(Liveness, DeadAluResultIsReported)
{
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        add.u32 r2, r1, 5;      // r2 never read
        st.global.u32 [r1+0], r1;
        exit;
    )");
    LivenessResult r = analyze(p);
    const DeadDef *d = deadAt(r, 1);
    ASSERT_NE(d, nullptr);
    EXPECT_FALSE(d->isPred);
    EXPECT_EQ(d->index, 2);
    EXPECT_EQ(d->line, 3);
}

TEST(Liveness, DeadScalarLoadIsReported)
{
    Program p = assemble(R"(
        .const 8
        main:
        mov.u32 r1, %tid;
        ld.param.u32 r5, [4];   // result unused
        st.global.u32 [r1+0], r1;
        exit;
    )");
    LivenessResult r = analyze(p);
    EXPECT_NE(deadAt(r, 1), nullptr);
}

TEST(Liveness, DeadPredicateIsReported)
{
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        setp.lt.u32 p3, r1, 7;  // p3 never guards anything
        st.global.u32 [r1+0], r1;
        exit;
    )");
    LivenessResult r = analyze(p);
    const DeadDef *d = deadAt(r, 1);
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->isPred);
    EXPECT_EQ(d->index, 3);
}

TEST(Liveness, StoreAndAtomicAreNeverDead)
{
    // Stores have no destination; an atomic's side effect makes it
    // meaningful even when its returned value is ignored.
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        atom.add.u32 r9, [r1+0], r1;    // r9 unused but NOT a dead def
        st.global.u32 [r1+0], r1;
        exit;
    )");
    LivenessResult r = analyze(p);
    EXPECT_EQ(deadAt(r, 1), nullptr);
    EXPECT_EQ(deadAt(r, 2), nullptr);
}

TEST(Liveness, LoopCarriedValueIsLive)
{
    // r2's update feeds the next iteration's compare: live around the
    // back edge even though no read follows in straight-line order.
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        mov.u32 r2, 0;
        loop:
        add.u32 r2, r2, 1;
        setp.lt.u32 p0, r2, 10;
        @p0 bra loop;
        st.global.u32 [r1+0], r1;
        exit;
    )");
    LivenessResult r = analyze(p);
    EXPECT_EQ(deadAt(r, 2), nullptr);
    EXPECT_EQ(deadAt(r, 1), nullptr);
}

TEST(Liveness, GuardedRedefinitionDoesNotKill)
{
    // @p0 mov r2 only redefines r2 on some lanes: the unconditional
    // mov before it is still read on lanes where p0 is false.
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        setp.lt.u32 p0, r1, 7;
        mov.u32 r2, 1;
        @p0 mov.u32 r2, 2;
        st.global.u32 [r1+0], r2;
        exit;
    )");
    LivenessResult r = analyze(p);
    EXPECT_EQ(deadAt(r, 2), nullptr) << "guarded redefinition killed "
                                        "the preceding def";
    EXPECT_EQ(deadAt(r, 3), nullptr);
}

TEST(Liveness, UnguardedRedefinitionKills)
{
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        mov.u32 r2, 1;          // dead: overwritten before any read
        mov.u32 r2, 2;
        st.global.u32 [r1+0], r2;
        exit;
    )");
    LivenessResult r = analyze(p);
    EXPECT_NE(deadAt(r, 1), nullptr);
    EXPECT_EQ(deadAt(r, 2), nullptr);
}

TEST(Liveness, WideLoadWithOnePartUsedIsNotDead)
{
    // ld.v2 defines r4 and r5; r5 alone being read keeps the load.
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        ld.global.v2.u32 r4, [r1+0];
        st.global.u32 [r1+0], r5;
        exit;
    )");
    LivenessResult r = analyze(p);
    EXPECT_EQ(deadAt(r, 1), nullptr);
}

TEST(Liveness, DeadOnlyFromSomeEntriesIsNotReported)
{
    // A two-entry program (launch + µ-kernel): defs that are read on
    // every entry's paths never show up, even when the solves run
    // separately per entry over shared blocks.
    Program p = assemble(R"(
        .entry main
        .microkernel uk
        .spawn_state 4
        main:
        mov.u32 r1, %tid;
        mov.u32 r6, %spawnaddr;
        st.spawn.u32 [r6+0], r1;
        spawn uk, r6;
        exit;
        uk:
        mov.u32 r2, %spawnaddr;
        ld.spawn.u32 r3, [r2+0];
        ld.spawn.u32 r4, [r3+0];
        bra tail;
        tail:
        mov.u32 r5, 7;
        st.global.u32 [r4+0], r5;
        exit;
    )");
    LivenessResult r = analyze(p);
    for (const DeadDef &d : r.deadDefs)
        EXPECT_TRUE(false) << "unexpected dead def at pc " << d.pc;
}

TEST(Liveness, VerifierSurfacesDeadDefWarning)
{
    VerifyResult r = verify(assemble(R"(main:
        mov.u32 r1, %tid;
        add.u32 r2, r1, 5;
        st.global.u32 [r1+0], r1;
        exit;
    )"));
    const Diagnostic *found = nullptr;
    for (const Diagnostic &d : r.diagnostics) {
        if (d.id == "dead-def")
            found = &d;
    }
    ASSERT_NE(found, nullptr) << r.report();
    EXPECT_EQ(found->severity, Severity::Warning);
    EXPECT_EQ(found->pc, 1u);
    EXPECT_NE(found->message.find("r2"), std::string::npos);
    // Warning-severity: clean under default gating, fails under strict.
    EXPECT_FALSE(r.failed());
    EXPECT_TRUE(r.failed({.warningsAsErrors = true}));
}

} // namespace
