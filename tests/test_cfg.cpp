/**
 * @file
 * CFG and post-dominator analysis tests: the reconvergence points PDOM
 * branching depends on.
 */

#include <gtest/gtest.h>

#include "simt/assembler.hpp"
#include "simt/cfg.hpp"

using namespace uksim;

namespace {

TEST(Cfg, IfElseReconvergesAtJoin)
{
    // if (p0) {A} else {B}; C
    Program p = assemble(R"(
        setp.eq.u32 p0, r1, 0;
        @p0 bra then;
        mov.u32 r2, 1;       // else
        bra join;
        then:
        mov.u32 r2, 2;
        join:
        mov.u32 r3, r2;
        exit;
    )");
    const uint32_t branchPc = 1;
    EXPECT_EQ(p.code[branchPc].op, Opcode::Bra);
    EXPECT_EQ(p.code[branchPc].reconvergePc, p.labels.at("join"));
}

TEST(Cfg, LoopBackEdgeReconvergesAfterLoop)
{
    Program p = assemble(R"(
        mov.u32 r1, 0;
        loop:
        add.u32 r1, r1, 1;
        setp.lt.u32 p0, r1, 10;
        @p0 bra loop;
        after:
        exit;
    )");
    const uint32_t branchPc = 3;
    EXPECT_EQ(p.code[branchPc].reconvergePc, p.labels.at("after"));
}

TEST(Cfg, NestedIfReconvergence)
{
    Program p = assemble(R"(
        setp.eq.u32 p0, r1, 0;
        @p0 bra outer_then;
        mov.u32 r2, 1;
        bra outer_join;
        outer_then:
        setp.eq.u32 p1, r3, 0;
        @p1 bra inner_then;
        mov.u32 r2, 2;
        bra inner_join;
        inner_then:
        mov.u32 r2, 3;
        inner_join:
        mov.u32 r4, r2;
        outer_join:
        exit;
    )");
    EXPECT_EQ(p.code[1].reconvergePc, p.labels.at("outer_join"));
    EXPECT_EQ(p.code[5].reconvergePc, p.labels.at("inner_join"));
}

TEST(Cfg, DivergentExitReconvergesOnlyAtProgramEnd)
{
    // Lanes that branch away exit; no common post-dominator block.
    Program p = assemble(R"(
        setp.eq.u32 p0, r1, 0;
        @p0 bra die;
        mov.u32 r2, 1;
        exit;
        die:
        exit;
    )");
    // Reconvergence pc is the exit sentinel (== code size).
    EXPECT_EQ(p.code[1].reconvergePc, p.size());
}

TEST(Cfg, BasicBlockPartition)
{
    Program p = assemble(R"(
        mov.u32 r1, 0;
        loop:
        add.u32 r1, r1, 1;
        setp.lt.u32 p0, r1, 4;
        @p0 bra loop;
        exit;
    )");
    Cfg cfg(p);
    // Blocks: [0,0][1,3][4,4]
    ASSERT_EQ(cfg.blocks().size(), 3u);
    EXPECT_EQ(cfg.blocks()[0].first, 0u);
    EXPECT_EQ(cfg.blocks()[0].last, 0u);
    EXPECT_EQ(cfg.blocks()[1].first, 1u);
    EXPECT_EQ(cfg.blocks()[1].last, 3u);
    EXPECT_EQ(cfg.blockOf(2), 1);
    // Loop block has two successors: itself and the exit block.
    auto succ = cfg.blocks()[1].successors;
    EXPECT_EQ(succ.size(), 2u);
}

TEST(Cfg, PostDominanceProperties)
{
    Program p = assemble(R"(
        setp.eq.u32 p0, r1, 0;
        @p0 bra a;
        mov.u32 r2, 1;
        bra join;
        a:
        mov.u32 r2, 2;
        join:
        exit;
    )");
    Cfg cfg(p);
    const int entry = cfg.blockOf(0);
    const int thenB = cfg.blockOf(p.labels.at("a"));
    const int elseB = cfg.blockOf(2);
    const int join = cfg.blockOf(p.labels.at("join"));
    EXPECT_TRUE(cfg.postDominates(join, entry));
    EXPECT_TRUE(cfg.postDominates(join, thenB));
    EXPECT_TRUE(cfg.postDominates(join, elseB));
    EXPECT_FALSE(cfg.postDominates(thenB, entry));
    EXPECT_FALSE(cfg.postDominates(elseB, thenB));
    // Every block post-dominates itself.
    for (size_t b = 0; b < cfg.blocks().size(); b++)
        EXPECT_TRUE(cfg.postDominates(int(b), int(b)));
    EXPECT_EQ(cfg.immediatePostDominator(entry), join);
}

TEST(Cfg, PredicatedExitFallsThrough)
{
    Program p = assemble(R"(
        setp.eq.u32 p0, r1, 0;
        @p0 exit;
        mov.u32 r2, 1;
        exit;
    )");
    Cfg cfg(p);
    // The block containing the predicated exit must have a fall-through
    // successor in addition to the virtual exit edge.
    int b = cfg.blockOf(1);
    bool hasFall = false;
    for (int s : cfg.blocks()[b].successors) {
        if (s != Cfg::kVirtualExit &&
            cfg.blocks()[s].first == 2u) {
            hasFall = true;
        }
    }
    EXPECT_TRUE(hasFall);
}

TEST(Cfg, MicroKernelEntriesAreLeaders)
{
    Program p = assemble(R"(
        .entry main
        .microkernel mk
        main:
            nop;
            spawn mk, r1;
            exit;
        mk:
            nop;
            exit;
    )");
    Cfg cfg(p);
    // mk's entry must start its own basic block.
    int mkBlock = cfg.blockOf(p.labels.at("mk"));
    EXPECT_EQ(cfg.blocks()[mkBlock].first, p.labels.at("mk"));
}

TEST(Cfg, RealKernelsHaveConsistentReconvergence)
{
    // Smoke: every branch in both shipped kernels gets a reconvergence
    // pc that is either the exit sentinel or a valid pc that
    // post-dominates the branch block.
    auto checkProgram = [](Program p) {
        Cfg cfg(p);
        for (uint32_t pc = 0; pc < p.size(); pc++) {
            if (p.code[pc].op != Opcode::Bra)
                continue;
            uint32_t rpc = p.code[pc].reconvergePc;
            if (rpc == p.size())
                continue;
            ASSERT_LT(rpc, p.size());
            EXPECT_TRUE(cfg.postDominates(cfg.blockOf(rpc),
                                          cfg.blockOf(pc)))
                << "branch at pc " << pc;
        }
    };
    checkProgram(assemble(R"(
        main:
        loop:
        setp.lt.u32 p0, r1, 4;
        @p0 bra body;
        exit;
        body:
        add.u32 r1, r1, 1;
        bra loop;
    )"));
}

} // namespace
