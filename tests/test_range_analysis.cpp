/**
 * @file
 * Value-range analysis tests: the interval checker unit-level contract
 * (in-bounds ranges prove, straddling ranges stay silent, definite
 * overruns report), the verifier integration (range-proven accesses the
 * constant-only checker could never see), and the negative case — a
 * range-provable definite out-of-bounds access fails verification.
 */

#include <gtest/gtest.h>

#include "example_kernels.hpp"
#include "kernels/raytrace_kernels.hpp"
#include "simt/analysis/range.hpp"
#include "simt/assembler.hpp"
#include "simt/verifier.hpp"

using namespace uksim;
using namespace uksim::analysis;

namespace {

const Diagnostic *
findDiag(const VerifyResult &result, const std::string &id)
{
    for (const Diagnostic &d : result.diagnostics) {
        if (d.id == id)
            return &d;
    }
    return nullptr;
}

// --- checkOffsetRange unit contract -----------------------------------------

TEST(RangeCheck, ConstantInBounds)
{
    AccessCheck c = checkOffsetRange(Interval::konst(8), 4, 4, 16);
    EXPECT_EQ(c.proof, AccessProof::ProvedConst);
    EXPECT_EQ(c.lo, 12);
    EXPECT_EQ(c.hi, 12);
}

TEST(RangeCheck, RangeInBounds)
{
    // Offsets [0,12] + 4 bytes each: highest touched byte is 15 < 16.
    AccessCheck c = checkOffsetRange(Interval::range(0, 12), 0, 4, 16);
    EXPECT_EQ(c.proof, AccessProof::ProvedRange);
}

TEST(RangeCheck, StraddlingRangeIsUnproven)
{
    // [8,20] + 4 bytes vs limit 16: low end fits, high end overruns —
    // a *possible* bug is not reported.
    AccessCheck c = checkOffsetRange(Interval::range(8, 20), 0, 4, 16);
    EXPECT_EQ(c.proof, AccessProof::Unproven);
}

TEST(RangeCheck, DefiniteOverrunIsOutOfBounds)
{
    // Every offset in [16,28] overruns a 16-byte segment.
    AccessCheck c = checkOffsetRange(Interval::range(16, 28), 0, 4, 16);
    EXPECT_EQ(c.proof, AccessProof::OutOfBounds);
}

TEST(RangeCheck, NegativeOffsetIsOutOfBounds)
{
    // A constant base folded with a negative memOffset lands below the
    // segment on every path.
    AccessCheck c = checkOffsetRange(Interval::konst(0), -8, 4, 16);
    EXPECT_EQ(c.proof, AccessProof::OutOfBounds);
}

TEST(RangeCheck, PossibleWraparoundStaysUnproven)
{
    // The top of the range could wrap past 2^32: refuse to claim a
    // definite overrun.
    AccessCheck c =
        checkOffsetRange(Interval::range(32, Interval::kMaxU32), 0, 4, 16);
    EXPECT_EQ(c.proof, AccessProof::Unproven);
}

TEST(RangeCheck, FullIntervalIsUnproven)
{
    AccessCheck c = checkOffsetRange(Interval::full(), 0, 4, 16);
    EXPECT_EQ(c.proof, AccessProof::Unproven);
}

TEST(RangeCheck, MergeKeepsWeakestClaim)
{
    EXPECT_EQ(mergeProof(AccessProof::ProvedConst,
                         AccessProof::ProvedRange),
              AccessProof::ProvedRange);
    EXPECT_EQ(mergeProof(AccessProof::ProvedRange,
                         AccessProof::Unproven),
              AccessProof::Unproven);
    EXPECT_EQ(mergeProof(AccessProof::Unproven,
                         AccessProof::OutOfBounds),
              AccessProof::OutOfBounds);
    EXPECT_EQ(mergeProof(AccessProof::Unbounded,
                         AccessProof::ProvedConst),
              AccessProof::ProvedConst);
}

// --- Verifier integration ---------------------------------------------------

TEST(RangeAnalysis, MaskedIndexProvesLocalAccess)
{
    // r3 = (tid & 3) * 4 is in [0,12]; the 4-byte access at [r3+0]
    // touches bytes [0,16) of a 16-byte local segment. The constant
    // checker cannot prove this — the range checker must.
    VerifyResult r = verify(assemble(R"(
        .local_per_thread 16
        main:
        mov.u32 r1, %tid;
        and.u32 r2, r1, 3;
        shl.u32 r3, r2, 2;
        ld.local.u32 r4, [r3+0];
        st.global.u32 [r1+0], r4;
        exit;
    )"));
    EXPECT_EQ(findDiag(r, "local-oob"), nullptr) << r.report();
    EXPECT_GE(r.accesses.provedRange, 1u);
    EXPECT_FALSE(r.failed({.warningsAsErrors = true})) << r.report();
}

TEST(RangeAnalysis, SlotStrideProvesSharedAccess)
{
    // The canonical per-thread shared slice: base = %slot * stride.
    // Only a symbolic-base range proof can see through %slot.
    VerifyResult r = verify(assemble(R"(
        .shared_per_thread 32
        main:
        mov.u32 r1, %slot;
        mul.u32 r2, r1, 32;
        mov.u32 r3, 7;
        st.shared.u32 [r2+28], r3;
        ld.shared.u32 r4, [r2+0];
        st.global.u32 [r4+0], r4;
        exit;
    )"));
    EXPECT_EQ(findDiag(r, "shared-oob"), nullptr) << r.report();
    EXPECT_GE(r.accesses.provedRange, 2u);
}

TEST(RangeAnalysis, RangeProvableDefiniteLocalOobFails)
{
    // (tid & 3) * 4 + 16 is in [16,28]: every lane overruns the
    // 16-byte local segment. The old constant-only checker was blind to
    // this; the range checker reports a hard error.
    VerifyResult r = verify(assemble(R"(
        .local_per_thread 16
        main:
        mov.u32 r1, %tid;
        and.u32 r2, r1, 3;
        shl.u32 r3, r2, 2;
        ld.local.u32 r4, [r3+16];
        st.global.u32 [r1+0], r4;
        exit;
    )"));
    const Diagnostic *d = findDiag(r, "local-oob");
    ASSERT_NE(d, nullptr) << r.report();
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_TRUE(r.failed());
    EXPECT_GE(r.accesses.outOfBounds, 1u);
}

TEST(RangeAnalysis, RangeProvableSpawnStateOobFails)
{
    // Stores at offsets [8,20] of an 8-byte state record: every lane
    // lands outside its own record.
    VerifyResult r = verify(assemble(R"(
        .entry main
        .microkernel uk
        .spawn_state 8
        main:
        mov.u32 r1, %tid;
        mov.u32 r6, %spawnaddr;
        and.u32 r2, r1, 3;
        shl.u32 r3, r2, 2;
        add.u32 r4, r6, r3;
        st.spawn.u32 [r4+8], r1;
        st.spawn.u32 [r6+0], r1;
        st.spawn.u32 [r6+4], r1;
        spawn uk, r6;
        exit;
        uk:
        mov.u32 r2, %spawnaddr;
        ld.spawn.u32 r3, [r2+0];
        ld.spawn.u32 r4, [r3+0];
        ld.spawn.u32 r5, [r3+4];
        st.global.u32 [r4+0], r5;
        exit;
    )"));
    const Diagnostic *d = findDiag(r, "spawn-state-oob");
    ASSERT_NE(d, nullptr) << r.report();
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_TRUE(r.failed());
}

TEST(RangeAnalysis, ShippedKernelsHaveRangeProvenAccesses)
{
    // Acceptance: for every shipped benchmark kernel the range checker
    // proves at least one access the constant-only checker could not.
    struct Case {
        const char *name;
        Program p;
    };
    const Case cases[] = {
        {"traditional", kernels::buildTraditional()},
        {"microkernel", kernels::buildMicroKernel()},
        {"persistent-threads", kernels::buildPersistentThreads()},
        {"microkernel-adaptive", kernels::buildMicroKernelAdaptive()},
    };
    for (const Case &c : cases) {
        VerifyResult r = verify(c.p);
        EXPECT_GE(r.accesses.provedRange, 1u) << c.name;
        EXPECT_EQ(r.accesses.outOfBounds, 0u) << c.name;
        EXPECT_GT(r.accesses.total, 0u) << c.name;
    }
}

TEST(RangeAnalysis, AccessStatsPartitionTheAccessCount)
{
    VerifyResult r = verify(kernels::buildTraditional());
    EXPECT_EQ(r.accesses.total,
              r.accesses.unbounded + r.accesses.provedConst +
                  r.accesses.provedRange + r.accesses.unproven +
                  r.accesses.outOfBounds);
}

} // namespace
