/**
 * @file
 * Spawn unit (LUT / partial warp pool / FIFO) unit tests — the paper's
 * Sec. IV-C warp-formation hardware.
 */

#include <gtest/gtest.h>

#include <set>

#include "simt/assembler.hpp"
#include "spawn/spawn_layout.hpp"
#include "spawn/spawn_unit.hpp"
#include "test_common.hpp"

using namespace uksim;

namespace {

class SpawnUnitTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        config_ = test::smallConfig();
        program_ = assemble(R"(
            .entry main
            .microkernel mk_a
            .microkernel mk_b
            .spawn_state 48
            main:
                exit;
            mk_a:
                exit;
            mk_b:
                exit;
        )");
        layout_ = SpawnMemoryLayout::compute(48, 256, 2,
                                             config_.warpSize);
        store_ = Store("spawn", layout_.totalBytes);
        unit_ = std::make_unique<SpawnUnit>(config_, program_, layout_);
    }

    /** Spawn @p n threads toward micro-kernel @p index. */
    SpawnIssue spawnN(int index, int n, uint32_t firstDataPtr = 0)
    {
        std::vector<uint32_t> ptrs(config_.warpSize, 0);
        uint64_t mask = 0;
        for (int i = 0; i < n; i++) {
            ptrs[i] = firstDataPtr + i * 48;
            mask |= uint64_t{1} << i;
        }
        return unit_->spawn(program_.microKernels[index].pc, mask, ptrs,
                            store_);
    }

    GpuConfig config_;
    Program program_;
    SpawnMemoryLayout layout_;
    Store store_;
    std::unique_ptr<SpawnUnit> unit_;
};

TEST_F(SpawnUnitTest, LayoutSizing)
{
    // entries = (256 + (2-1)*32) * 2 = 576, rounded to warp multiple.
    EXPECT_EQ(layout_.dataSlots, 256u);
    EXPECT_EQ(layout_.formationEntries, 576u);
    EXPECT_EQ(layout_.formationBase, 256u * 48);
    EXPECT_EQ(layout_.stateAddr(3), 3u * 48);
    EXPECT_EQ(layout_.slotOf(5 * 48), 5u);
    EXPECT_TRUE(layout_.inFormationRegion(layout_.formationBase));
    EXPECT_FALSE(layout_.inFormationRegion(layout_.formationBase - 4));
}

TEST_F(SpawnUnitTest, PartialWarpAccumulates)
{
    spawnN(0, 10);
    EXPECT_TRUE(unit_->fifoEmpty());
    EXPECT_TRUE(unit_->hasPartialWarps());
    EXPECT_EQ(unit_->partialThreadCount(), 10);
    EXPECT_EQ(unit_->lutLine(0).count, 10u);
    EXPECT_EQ(unit_->threadsSpawned(), 10u);

    spawnN(0, 10);
    EXPECT_EQ(unit_->lutLine(0).count, 20u);
    EXPECT_TRUE(unit_->fifoEmpty());
}

TEST_F(SpawnUnitTest, WarpCompletesIntoFifo)
{
    spawnN(0, 20);
    SpawnIssue issue = spawnN(0, 12, 20 * 48);
    EXPECT_EQ(issue.warpsCompleted, 1);
    EXPECT_EQ(unit_->fifoSize(), 1u);
    EXPECT_EQ(unit_->lutLine(0).count, 0u);
    EXPECT_EQ(unit_->warpsFormed(), 1u);

    FormedWarp w = unit_->popWarp();
    EXPECT_EQ(w.pc, program_.microKernels[0].pc);
    EXPECT_EQ(w.threadCount, config_.warpSize);
    // The formation region holds the 32 data pointers in spawn order.
    EXPECT_EQ(store_.read32(w.regionAddr), 0u);
    EXPECT_EQ(store_.read32(w.regionAddr + 19 * 4), 19u * 48);
    EXPECT_EQ(store_.read32(w.regionAddr + 31 * 4), (20u + 11) * 48);
}

TEST_F(SpawnUnitTest, OverflowIntoSecondWarp)
{
    // 40 threads in one spawn: one full warp + 8 left in the new
    // current region (the paper's overflow-address mechanism).
    spawnN(0, 30);
    std::vector<uint32_t> ptrs(config_.warpSize);
    uint64_t mask = 0;
    for (int i = 0; i < 32; i++) {
        ptrs[i] = (30 + i) * 48;
        mask |= uint64_t{1} << i;
    }
    SpawnIssue issue = unit_->spawn(program_.microKernels[0].pc, mask,
                                    ptrs, store_);
    EXPECT_EQ(issue.warpsCompleted, 1);
    EXPECT_EQ(unit_->lutLine(0).count, 30u);    // 62 - 32
    EXPECT_EQ(unit_->fifoSize(), 1u);

    // All 62 store addresses must be unique.
    std::set<uint64_t> seen;
    for (uint64_t a : issue.storeAddrs) {
        if (a == ~uint64_t{0})
            continue;
        EXPECT_TRUE(seen.insert(a).second) << "duplicate address " << a;
    }
}

TEST_F(SpawnUnitTest, DistinctMicroKernelsUseDistinctLines)
{
    spawnN(0, 5);
    spawnN(1, 7, 1024);
    EXPECT_EQ(unit_->lutLine(0).count, 5u);
    EXPECT_EQ(unit_->lutLine(1).count, 7u);
    EXPECT_NE(unit_->lutLine(0).addr1, unit_->lutLine(1).addr1);
}

TEST_F(SpawnUnitTest, FlushLowestPcFirst)
{
    spawnN(1, 7);    // mk_b has the higher pc
    spawnN(0, 5);    // mk_a lower pc
    FormedWarp w = unit_->flushLowestPcPartial();
    EXPECT_EQ(w.pc, program_.microKernels[0].pc);
    EXPECT_EQ(w.threadCount, 5);
    EXPECT_EQ(unit_->partialFlushes(), 1u);
    EXPECT_TRUE(unit_->hasPartialWarps());     // mk_b still parked
    FormedWarp w2 = unit_->flushLowestPcPartial();
    EXPECT_EQ(w2.pc, program_.microKernels[1].pc);
    EXPECT_EQ(w2.threadCount, 7);
    EXPECT_FALSE(unit_->hasPartialWarps());
}

TEST_F(SpawnUnitTest, InactiveLanesGetNoAddress)
{
    std::vector<uint32_t> ptrs(config_.warpSize, 0);
    ptrs[3] = 3 * 48;
    ptrs[17] = 17 * 48;
    SpawnIssue issue = unit_->spawn(program_.microKernels[0].pc,
                                    (uint64_t{1} << 3) |
                                        (uint64_t{1} << 17),
                                    ptrs, store_);
    for (size_t lane = 0; lane < issue.storeAddrs.size(); lane++) {
        if (lane == 3 || lane == 17)
            EXPECT_NE(issue.storeAddrs[lane], ~uint64_t{0});
        else
            EXPECT_EQ(issue.storeAddrs[lane], ~uint64_t{0});
    }
    EXPECT_EQ(unit_->partialThreadCount(), 2);
}

TEST_F(SpawnUnitTest, RegionReleaseAllowsRingReuse)
{
    // Fill-and-drain far past the ring capacity: with releases this
    // must never throw.
    for (int round = 0; round < 200; round++) {
        spawnN(0, 32, uint32_t(round % 8) * 32 * 48);
        FormedWarp w = unit_->popWarp();
        unit_->releaseRegion(w.regionAddr);
    }
    EXPECT_EQ(unit_->warpsFormed(), 200u);
}

TEST_F(SpawnUnitTest, ExhaustionWithoutReleaseFaults)
{
    // Spawn-and-pop without ever releasing: the ring eventually runs
    // dry. The unit reports SpawnRegionExhausted on the SpawnIssue
    // without mutating any state, so the caller's trap handler sees a
    // consistent unit.
    SpawnIssue issue;
    int rounds = 0;
    for (; rounds < 1000; rounds++) {
        issue = spawnN(0, 32);
        if (issue.fault != FaultCode::None)
            break;
        unit_->popWarp();   // never released
    }
    EXPECT_EQ(issue.fault, FaultCode::SpawnRegionExhausted);
    EXPECT_LT(rounds, 1000);
    EXPECT_EQ(issue.warpsCompleted, 0);
    EXPECT_EQ(unit_->freeRegionCount(), 0u);
    // All-or-nothing: the failed spawn left the LUT line untouched.
    EXPECT_EQ(unit_->lutLine(0).count, 0u);
}

TEST_F(SpawnUnitTest, SpawnToUnknownPcFaults)
{
    std::vector<uint32_t> ptrs(config_.warpSize, 0);
    SpawnIssue issue = unit_->spawn(9999, 1, ptrs, store_);
    EXPECT_EQ(issue.fault, FaultCode::SpawnNoLutLine);
    EXPECT_EQ(issue.warpsCompleted, 0);
    EXPECT_EQ(unit_->threadsSpawned(), 0u);
}

TEST(SpawnLayoutTest, PaperSizingExample)
{
    // Sec. IV-A2: size = NumThreads + (SpawnLocations-1)*WarpSize,
    // doubled. With 800 threads, 4 locations, warp 32:
    SpawnMemoryLayout l = SpawnMemoryLayout::compute(48, 800, 4, 32);
    EXPECT_EQ(l.formationEntries, (800u + 3 * 32) * 2);
    EXPECT_EQ(l.totalBytes, 800u * 48 + l.formationEntries * 4);
}

} // namespace
