/**
 * @file
 * Determinism contract of the parallel cycle engine: simulating with any
 * number of host threads must produce exactly the bits of the serial
 * engine — statistics (including the stall attribution and occupancy
 * windows), per-SM counters, rendered images, and trace content.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "simt/worker_pool.hpp"
#include "test_common.hpp"

using namespace uksim;
using namespace uksim::harness;

namespace {

/**
 * The CI matrix exports UKSIM_THREADS, which overrides
 * GpuConfig::hostThreads inside Gpu. This suite sets thread counts
 * explicitly per run, so neutralize the override for its duration.
 */
class ParallelDeterminism : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (const char *env = std::getenv("UKSIM_THREADS")) {
            saved_ = env;
            hadEnv_ = true;
            unsetenv("UKSIM_THREADS");
        }
    }

    void TearDown() override
    {
        if (hadEnv_)
            setenv("UKSIM_THREADS", saved_.c_str(), 1);
    }

    static ExperimentConfig
    baseExperiment(KernelKind kind, int hostThreads, bool traceEvents)
    {
        ExperimentConfig cfg;
        cfg.sceneName = "conference";
        cfg.sceneParams.detail = 4;
        cfg.sceneParams.imageWidth = 32;
        cfg.sceneParams.imageHeight = 32;
        cfg.kernel = kind;
        cfg.baseConfig = test::smallConfig();   // 4 SMs
        cfg.baseConfig.hostThreads = hostThreads;
        cfg.maxCycles = cfg.baseConfig.maxCycles;
        cfg.traceEvents = traceEvents;
        return cfg;
    }

    static ExperimentResult
    runAt(const PreparedScene &scene, KernelKind kind, int hostThreads,
          bool traceEvents = false)
    {
        return runExperiment(scene,
                             baseExperiment(kind, hostThreads, traceEvents));
    }

    static void
    expectIdentical(const ExperimentResult &serial,
                    const ExperimentResult &threaded, int threads)
    {
        SCOPED_TRACE("hostThreads=" + std::to_string(threads));
        // SimStats::operator== covers every counter, the full stall
        // attribution, and the occupancy time series.
        EXPECT_TRUE(serial.stats == threaded.stats);
        ASSERT_EQ(serial.smStalls.size(), threaded.smStalls.size());
        for (size_t i = 0; i < serial.smStalls.size(); i++)
            EXPECT_TRUE(serial.smStalls[i] == threaded.smStalls[i])
                << "per-SM stall counters differ on SM " << i;
        ASSERT_EQ(serial.hits.size(), threaded.hits.size());
        for (size_t i = 0; i < serial.hits.size(); i++) {
            EXPECT_EQ(serial.hits[i].triId, threaded.hits[i].triId)
                << "pixel " << i;
            EXPECT_EQ(floatBits(serial.hits[i].t),
                      floatBits(threaded.hits[i].t))
                << "pixel " << i;
        }
    }

  private:
    std::string saved_;
    bool hadEnv_ = false;
};

TEST_F(ParallelDeterminism, TraditionalKernelBitIdentical)
{
    ExperimentConfig probe =
        baseExperiment(KernelKind::Traditional, 1, false);
    PreparedScene scene = prepareScene(probe.sceneName, probe.sceneParams);

    ExperimentResult serial = runAt(scene, KernelKind::Traditional, 1);
    ASSERT_TRUE(serial.ranToCompletion);
    for (int threads : {2, 4}) {
        ExperimentResult r = runAt(scene, KernelKind::Traditional, threads);
        ASSERT_TRUE(r.ranToCompletion);
        expectIdentical(serial, r, threads);
    }
}

TEST_F(ParallelDeterminism, MicroKernelBitIdentical)
{
    // Exercises the spawn unit, dynamic warp formation and spawn memory
    // under sharded stepping.
    ExperimentConfig probe =
        baseExperiment(KernelKind::MicroKernel, 1, false);
    PreparedScene scene = prepareScene(probe.sceneName, probe.sceneParams);

    ExperimentResult serial = runAt(scene, KernelKind::MicroKernel, 1);
    ASSERT_TRUE(serial.ranToCompletion);
    for (int threads : {2, 4}) {
        ExperimentResult r = runAt(scene, KernelKind::MicroKernel, threads);
        ASSERT_TRUE(r.ranToCompletion);
        expectIdentical(serial, r, threads);
    }
}

TEST_F(ParallelDeterminism, TraceContentThreadCountIndependent)
{
    // The event buffers drain in SM-id order each cycle, so the master
    // ring — including which records it drops — must not depend on the
    // thread count. Chrome-trace JSON is a full serialization of the
    // ring, so string equality is content equality.
    ExperimentConfig probe =
        baseExperiment(KernelKind::MicroKernel, 1, true);
    PreparedScene scene = prepareScene(probe.sceneName, probe.sceneParams);

    ExperimentResult serial =
        runAt(scene, KernelKind::MicroKernel, 1, true);
    ExperimentResult threaded =
        runAt(scene, KernelKind::MicroKernel, 4, true);
    EXPECT_FALSE(serial.chromeTrace.empty());
    EXPECT_EQ(serial.chromeTrace, threaded.chromeTrace);
    EXPECT_TRUE(serial.stats == threaded.stats);
}

TEST_F(ParallelDeterminism, StallInvariantHoldsUnderThreads)
{
    ExperimentConfig probe =
        baseExperiment(KernelKind::Traditional, 4, false);
    PreparedScene scene = prepareScene(probe.sceneName, probe.sceneParams);
    ExperimentResult r = runAt(scene, KernelKind::Traditional, 4);
    EXPECT_EQ(r.stats.stall.total(),
              uint64_t(probe.baseConfig.numSms) * r.stats.cycles);
}

TEST(WorkerPool, RunsEverySlotAndPropagatesExceptions)
{
    WorkerPool pool(4);
    EXPECT_EQ(pool.threads(), 4);

    std::vector<int> hits(4, 0);
    for (int round = 0; round < 100; round++) {
        pool.parallelFor([&](int slot) { hits[slot]++; });
    }
    for (int slot = 0; slot < 4; slot++)
        EXPECT_EQ(hits[slot], 100);

    EXPECT_THROW(pool.parallelFor([](int slot) {
                     if (slot == 2)
                         throw std::runtime_error("boom");
                 }),
                 std::runtime_error);

    // The pool stays usable after an exception.
    pool.parallelFor([&](int slot) { hits[slot]++; });
    for (int slot = 0; slot < 4; slot++)
        EXPECT_EQ(hits[slot], 101);
}

} // namespace
