/**
 * @file
 * SM/GPU execution tests: whole small programs run through the
 * cycle-level model, results checked in device memory.
 */

#include <gtest/gtest.h>

#include "simt/assembler.hpp"
#include "simt/gpu.hpp"
#include "test_common.hpp"

using namespace uksim;

namespace {

/** Run @p src over @p threads threads with a result buffer of one word
 *  per thread at param[0]; returns the buffer. */
std::vector<uint32_t>
runKernel(const std::string &src, uint32_t threads,
          GpuConfig cfg = test::smallConfig(),
          SimStats *statsOut = nullptr)
{
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(src));
    uint32_t out = gpu.mallocGlobal(uint64_t(threads) * 4);
    uint32_t params[2] = {out, threads};
    gpu.toConst(0, params, sizeof(params));
    gpu.launch(threads);
    const SimStats &stats = gpu.run();
    if (statsOut)
        *statsOut = stats;
    EXPECT_TRUE(gpu.finished()) << "kernel did not drain";
    std::vector<uint32_t> result(threads);
    gpu.fromGlobal(out, result.data(), threads * 4);
    return result;
}

const char *kStoreTid = R"(
    main:
        mov.u32 r1, %tid;
        ld.param.u32 r2, [0];
        shl.u32 r3, r1, 2;
        add.u32 r2, r2, r3;
        st.global.u32 [r2+0], r1;
        exit;
)";

TEST(SmExec, EveryThreadStoresItsTid)
{
    auto result = runKernel(kStoreTid, 256);
    for (uint32_t i = 0; i < 256; i++)
        EXPECT_EQ(result[i], i);
}

TEST(SmExec, RaggedLastWarp)
{
    auto result = runKernel(kStoreTid, 70);   // 2 full warps + 6 lanes
    for (uint32_t i = 0; i < 70; i++)
        EXPECT_EQ(result[i], i);
}

TEST(SmExec, GridLargerThanMachine)
{
    // More threads than all SMs can hold at once: refill must work.
    GpuConfig cfg = test::smallConfig();
    cfg.numSms = 2;
    auto result = runKernel(kStoreTid, 8192, cfg);
    for (uint32_t i = 0; i < 8192; i++)
        ASSERT_EQ(result[i], i) << "tid " << i;
}

TEST(SmExec, DataDependentLoop)
{
    // result[tid] = sum(0..tid%7) computed with a loop.
    auto result = runKernel(R"(
        main:
            mov.u32 r1, %tid;
            rem.u32 r2, r1, 7;
            mov.u32 r3, 0;
            mov.u32 r4, 0;
        loop:
            setp.gt.u32 p0, r4, r2;
            @p0 bra done;
            add.u32 r3, r3, r4;
            add.u32 r4, r4, 1;
            bra loop;
        done:
            ld.param.u32 r5, [0];
            shl.u32 r6, r1, 2;
            add.u32 r5, r5, r6;
            st.global.u32 [r5+0], r3;
            exit;
    )",
                            128);
    for (uint32_t i = 0; i < 128; i++) {
        uint32_t n = i % 7;
        EXPECT_EQ(result[i], n * (n + 1) / 2) << i;
    }
}

TEST(SmExec, DivergentIfElse)
{
    auto result = runKernel(R"(
        main:
            mov.u32 r1, %tid;
            and.u32 r2, r1, 1;
            setp.eq.u32 p0, r2, 0;
            @p0 bra even;
            mul.u32 r3, r1, 3;
            bra join;
        even:
            mul.u32 r3, r1, 2;
        join:
            ld.param.u32 r5, [0];
            shl.u32 r6, r1, 2;
            add.u32 r5, r5, r6;
            st.global.u32 [r5+0], r3;
            exit;
    )",
                            64);
    for (uint32_t i = 0; i < 64; i++)
        EXPECT_EQ(result[i], (i % 2) ? i * 3 : i * 2);
}

TEST(SmExec, PredicatedExecutionWithoutBranch)
{
    auto result = runKernel(R"(
        main:
            mov.u32 r1, %tid;
            and.u32 r2, r1, 1;
            setp.eq.u32 p0, r2, 0;
            mov.u32 r3, 111;
            @!p0 mov.u32 r3, 222;
            ld.param.u32 r5, [0];
            shl.u32 r6, r1, 2;
            add.u32 r5, r5, r6;
            st.global.u32 [r5+0], r3;
            exit;
    )",
                            64);
    for (uint32_t i = 0; i < 64; i++)
        EXPECT_EQ(result[i], (i % 2) ? 222u : 111u);
}

TEST(SmExec, SharedMemoryPerSlotScratch)
{
    auto result = runKernel(R"(
        main:
            mov.u32 r1, %slot;
            shl.u32 r1, r1, 2;
            mov.u32 r2, %tid;
            mul.u32 r3, r2, 7;
            st.shared.u32 [r1+0], r3;
            ld.shared.u32 r4, [r1+0];
            ld.param.u32 r5, [0];
            shl.u32 r6, r2, 2;
            add.u32 r5, r5, r6;
            st.global.u32 [r5+0], r4;
            exit;
    )",
                            512);
    for (uint32_t i = 0; i < 512; i++)
        EXPECT_EQ(result[i], i * 7);
}

TEST(SmExec, LocalMemoryIsPrivate)
{
    auto result = runKernel(R"(
        .local_per_thread 16
        main:
            mov.u32 r1, %tid;
            mul.u32 r2, r1, 13;
            st.local.u32 [4], r2;
            ld.local.u32 r3, [4];
            ld.param.u32 r5, [0];
            shl.u32 r6, r1, 2;
            add.u32 r5, r5, r6;
            st.global.u32 [r5+0], r3;
            exit;
    )",
                            128);
    for (uint32_t i = 0; i < 128; i++)
        EXPECT_EQ(result[i], i * 13);
}

TEST(SmExec, VectorLoadStore)
{
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(R"(
        main:
            mov.u32 r1, %tid;
            shl.u32 r2, r1, 4;
            ld.param.u32 r3, [0];
            add.u32 r2, r2, r3
            ld.global.v4.f32 r8, [r2+0];
            add.f32 r8, r8, r11;
            add.f32 r9, r9, r11;
            st.global.v2.f32 [r2+0], r8;
            exit;
    )"));
    uint32_t buf = gpu.mallocGlobal(32 * 16);
    std::vector<float> init(32 * 4);
    for (int i = 0; i < 32; i++) {
        init[i * 4 + 0] = float(i);
        init[i * 4 + 1] = 10.0f;
        init[i * 4 + 2] = 20.0f;
        init[i * 4 + 3] = 1.0f;
    }
    gpu.toGlobal(buf, init.data(), init.size() * 4);
    uint32_t params[1] = {buf};
    gpu.toConst(0, params, 4);
    gpu.launch(32);
    gpu.run();
    std::vector<float> out(32 * 4);
    gpu.fromGlobal(buf, out.data(), out.size() * 4);
    for (int i = 0; i < 32; i++) {
        EXPECT_FLOAT_EQ(out[i * 4 + 0], float(i) + 1.0f);
        EXPECT_FLOAT_EQ(out[i * 4 + 1], 11.0f);
        EXPECT_FLOAT_EQ(out[i * 4 + 2], 20.0f);   // untouched
    }
}

TEST(SmExec, AtomicAddAggregatesAcrossWarpsAndSms)
{
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(R"(
        main:
            ld.param.u32 r1, [0];
            atom.add.u32 r2, [r1+0], 1;
            exit;
    )"));
    uint32_t counter = gpu.mallocGlobal(4);
    uint32_t params[1] = {counter};
    gpu.toConst(0, params, 4);
    gpu.launch(1000);
    gpu.run();
    uint32_t value = 0;
    gpu.fromGlobal(counter, &value, 4);
    EXPECT_EQ(value, 1000u);
}

TEST(SmExec, AtomicCasAndExch)
{
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(R"(
        main:
            ld.param.u32 r1, [0];
            // every thread tries cas(0 -> tid+1); exactly one wins
            mov.u32 r2, %tid;
            add.u32 r2, r2, 1;
            atom.cas.u32 r3, [r1+0], 0, r2;
            // count winners via exch on a flag word
            setp.eq.u32 p0, r3, 0;
            @!p0 exit;
            atom.add.u32 r4, [r1+4], 1;
            exit;
    )"));
    uint32_t buf = gpu.mallocGlobal(8);
    uint32_t params[1] = {buf};
    gpu.toConst(0, params, 4);
    gpu.launch(256);
    gpu.run();
    uint32_t words[2];
    gpu.fromGlobal(buf, words, 8);
    EXPECT_NE(words[0], 0u);
    EXPECT_EQ(words[1], 1u);    // exactly one CAS winner
}

TEST(SmExec, SfuAndMemoryLatencyAccrue)
{
    SimStats stats;
    runKernel(R"(
        main:
            mov.f32 r1, 2.0;
            sqrt.f32 r1, r1;
            rcp.f32 r1, r1;
            ld.param.u32 r2, [0];
            mov.u32 r3, %tid;
            shl.u32 r3, r3, 2;
            add.u32 r2, r2, r3;
            st.global.u32 [r2+0], r3;
            exit;
    )",
              32, test::smallConfig(), &stats);
    // One warp, several instructions with latency: cycles must exceed
    // the pure instruction count.
    EXPECT_GT(stats.cycles, 9u);
    EXPECT_GT(stats.laneInstructions, 0u);
}

TEST(SmExec, IpcNeverExceedsMachineWidth)
{
    SimStats stats;
    GpuConfig cfg = test::smallConfig();
    runKernel(kStoreTid, 4096, cfg, &stats);
    EXPECT_LE(stats.ipc(), double(cfg.numSms) * cfg.warpSize);
    EXPECT_GT(stats.ipc(), 0.0);
}

TEST(SmExec, RunsOffProgramEndThrows)
{
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg);
    gpu.loadProgram(assemble("main:\n  nop;\n"));  // no exit
    gpu.launch(32);
    EXPECT_THROW(gpu.run(), std::runtime_error);
}

TEST(SmExec, ThreadsCompletedCounted)
{
    SimStats stats;
    runKernel(kStoreTid, 300, test::smallConfig(), &stats);
    EXPECT_EQ(stats.threadsLaunched, 300u);
    EXPECT_EQ(stats.threadsCompleted, 300u);
    EXPECT_EQ(stats.itemsCompleted, 300u);
}

} // namespace
