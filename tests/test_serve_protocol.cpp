/**
 * @file
 * Session protocol tests (src/serve/protocol.hpp) over stringstreams.
 *
 * The Session is transport-agnostic, so these tests drive the full
 * request grammar — ping, list, malformed lines, unknown ops, submit
 * with an in-batch duplicate — without a daemon or sockets. The batch
 * here is the same 3-job/1-duplicate shape as the CI pipe smoke, so a
 * protocol regression fails fast in ctest before the e2e layer.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <istream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "harness/chaos.hpp"
#include "serve/engine.hpp"
#include "serve/fdio.hpp"
#include "serve/protocol.hpp"

using namespace uksim::serve;

namespace {

/// Run one session over the given request lines; returns stdout lines.
std::vector<std::string>
serveLines(ServerEngine &engine, const std::string &requests,
           bool *shutdownSeen = nullptr)
{
    std::istringstream in(requests);
    std::ostringstream out;
    Session session(engine, in, out);
    const bool shutdown = session.run();
    if (shutdownSeen)
        *shutdownSeen = shutdown;

    std::vector<std::string> lines;
    std::istringstream reader(out.str());
    std::string line;
    while (std::getline(reader, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

int
countContaining(const std::vector<std::string> &lines,
                const std::string &needle)
{
    int n = 0;
    for (const std::string &line : lines)
        if (line.find(needle) != std::string::npos)
            n++;
    return n;
}

ServerEngine
inProcessEngine()
{
    EngineOptions opts;
    opts.workers = 0;
    return ServerEngine(opts);
}

const char *kTinyJob =
    "{\"name\": \"uk_conference\", \"cycles\": 4000, \"detail\": 2, "
    "\"res\": 16, \"sms\": 2}";

} // anonymous namespace

TEST(ServeProtocol, PingPongCarriesSchema)
{
    ServerEngine engine = inProcessEngine();
    const auto lines = serveLines(engine, "{\"op\": \"ping\"}\n");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"event\": \"pong\""), std::string::npos);
    EXPECT_NE(lines[0].find(kProtocolSchema), std::string::npos);
}

TEST(ServeProtocol, ListReturnsNamedExperiments)
{
    ServerEngine engine = inProcessEngine();
    const auto lines = serveLines(engine, "{\"op\": \"list\"}\n");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"event\": \"configs\""), std::string::npos);
    EXPECT_NE(lines[0].find("uk_conference"), std::string::npos);
    EXPECT_NE(lines[0].find("pdom_atrium"), std::string::npos);
}

TEST(ServeProtocol, MalformedJsonYieldsErrorAndSessionSurvives)
{
    ServerEngine engine = inProcessEngine();
    const auto lines =
        serveLines(engine, "{\"op\": \"ping\", !}\n{\"op\": \"ping\"}\n");
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"event\": \"error\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"event\": \"pong\""), std::string::npos);
}

TEST(ServeProtocol, UnknownOpYieldsError)
{
    ServerEngine engine = inProcessEngine();
    const auto lines = serveLines(engine, "{\"op\": \"dance\"}\n");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"event\": \"error\""), std::string::npos);
}

TEST(ServeProtocol, BlankLinesAreIgnored)
{
    ServerEngine engine = inProcessEngine();
    const auto lines = serveLines(engine, "\n\n{\"op\": \"ping\"}\n\n");
    EXPECT_EQ(lines.size(), 1u);
}

TEST(ServeProtocol, ShutdownEndsTheSession)
{
    ServerEngine engine = inProcessEngine();
    bool shutdown = false;
    const auto lines = serveLines(
        engine, "{\"op\": \"shutdown\"}\n{\"op\": \"ping\"}\n", &shutdown);
    EXPECT_TRUE(shutdown);
    // The ping after shutdown must not be served.
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"event\": \"shutdown\""), std::string::npos);
}

TEST(ServeProtocol, EofWithoutShutdownReturnsFalse)
{
    ServerEngine engine = inProcessEngine();
    bool shutdown = true;
    serveLines(engine, "{\"op\": \"ping\"}\n", &shutdown);
    EXPECT_FALSE(shutdown);
}

TEST(ServeProtocol, SubmitRejectsUnknownJobField)
{
    ServerEngine engine = inProcessEngine();
    const auto lines = serveLines(
        engine,
        "{\"op\": \"submit\", \"batch\": "
        "[{\"name\": \"uk_conference\", \"cylces\": 4000}]}\n");
    // The whole batch is rejected before anything runs: one error
    // event, no batch_accepted.
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"event\": \"error\""), std::string::npos);
    EXPECT_NE(lines[0].find("cylces"), std::string::npos);
}

TEST(ServeProtocol, SubmitRejectsEmptyBatch)
{
    ServerEngine engine = inProcessEngine();
    const auto lines =
        serveLines(engine, "{\"op\": \"submit\", \"batch\": []}\n");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"event\": \"error\""), std::string::npos);
}

TEST(ServeProtocol, SubmitBatchWithDuplicateDedupes)
{
    ServerEngine engine = inProcessEngine();
    std::string batchJob = kTinyJob;
    std::string dupJob =
        "{\"name\": \"uk_conference\", \"label\": \"again\", "
        "\"cycles\": 4000, \"detail\": 2, \"res\": 16, \"sms\": 2}";
    std::string pdomJob =
        "{\"name\": \"pdom_conference\", \"cycles\": 4000, \"detail\": 2, "
        "\"res\": 16, \"sms\": 2}";
    const std::string request =
        "{\"op\": \"submit\", \"batch_id\": \"t\", \"batch\": [" + batchJob +
        ", " + pdomJob + ", " + dupJob + "]}\n";

    const auto lines = serveLines(engine, request);
    EXPECT_EQ(countContaining(lines, "\"event\": \"batch_accepted\""), 1);
    EXPECT_EQ(countContaining(lines, "\"jobs\": 3"), 1);
    EXPECT_EQ(countContaining(lines, "\"event\": \"job_done\""), 3);
    // With no on-disk cache, the duplicate still dedupes in-batch to
    // exactly one hit; the two distinct jobs compute. Count only
    // job_done lines — the manifest line repeats the cache field.
    int doneHits = 0;
    for (const std::string &line : lines)
        if (line.find("\"event\": \"job_done\"") != std::string::npos &&
            line.find("\"cache\": \"hit\"") != std::string::npos)
            doneHits++;
    EXPECT_EQ(doneHits, 1);
    EXPECT_EQ(countContaining(lines, "\"event\": \"batch_done\""), 1);
    EXPECT_EQ(countContaining(lines, "\"cache_hits\": 1"), 1);
    EXPECT_EQ(countContaining(lines, "\"computed\": 2"), 1);
    EXPECT_EQ(countContaining(lines, "\"failed\": 0"), 1);
    EXPECT_EQ(countContaining(lines, "ukserve-manifest-1"), 1);
}

TEST(ServeProtocol, SubmitUnknownConfigFailsThatJobOnly)
{
    ServerEngine engine = inProcessEngine();
    const std::string request =
        std::string("{\"op\": \"submit\", \"batch\": [") + kTinyJob +
        ", {\"name\": \"uk_mars\"}]}\n";
    const auto lines = serveLines(engine, request);
    EXPECT_EQ(countContaining(lines, "\"event\": \"job_done\""), 1);
    EXPECT_EQ(countContaining(lines, "\"event\": \"job_failed\""), 1);
    EXPECT_EQ(countContaining(lines, "\"failed\": 1"), 1);
}

TEST(ServeProtocol, TornSubmitLineYieldsErrorNotCrash)
{
    // A client that dies mid-write leaves a final line with no newline
    // and truncated JSON. The session must answer with an error event
    // and report EOF (no shutdown), never throw or run a partial batch.
    ServerEngine engine = inProcessEngine();
    bool shutdown = true;
    const auto lines = serveLines(
        engine, "{\"op\": \"submit\", \"batch\": [{\"name\": \"uk_conf",
        &shutdown);
    EXPECT_FALSE(shutdown);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"event\": \"error\""), std::string::npos);
    EXPECT_EQ(countContaining(lines, "batch_accepted"), 0);
}

TEST(ServeProtocol, ClientDyingMidSubmitOverFdStreamIsSurvived)
{
    // Same scenario over a real descriptor: the client socket carries
    // half a submit line and then closes. FdStreamBuf must deliver the
    // partial bytes, then EOF; the session answers one error and ends
    // cleanly. SIGPIPE is ignored exactly as the daemon does, so a
    // reply racing the close cannot kill the process.
    void (*prev)(int) = ::signal(SIGPIPE, SIG_IGN);
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const char *half = "{\"op\": \"submit\", \"batch\": [{\"na";
    ASSERT_TRUE(writeFull(fds[0], half, std::strlen(half)));
    ::close(fds[0]); // the client dies mid-submit

    ServerEngine engine = inProcessEngine();
    FdStreamBuf buf(fds[1]);
    std::istream in(&buf);
    std::ostringstream out;
    Session session(engine, in, out);
    EXPECT_FALSE(session.run()); // EOF, not shutdown
    EXPECT_NE(out.str().find("\"event\": \"error\""), std::string::npos);
    ::close(fds[1]);
    ::signal(SIGPIPE, prev);
}

TEST(ServeProtocol, SubmitChaosPlanAppliesToThatBatchOnly)
{
    // The submit carries a "ukchaos-plan-1" document that fires one
    // injected deadline: batch 1 must show a timeout, a retry, and the
    // chaos tally in its manifest. The same submit minus the plan in
    // the same session must run untouched — ScopedChaos restored the
    // engine between batches.
    ASSERT_FALSE(uksim::chaos::ChaosEngine::instance().enabled());
    EngineOptions opts;
    opts.workers = 0;
    opts.snapshotCycles = 2000; // chunk boundaries arm job.deadline
    opts.backoffBaseMs = 1;
    ServerEngine engine(opts);

    const std::string plan =
        "{\"schema\": \"ukchaos-plan-1\", \"seed\": 3, \"rules\": "
        "[{\"site\": \"job.deadline\", \"on_hit\": 1, "
        "\"max_fires\": 1}]}";
    const std::string request =
        std::string("{\"op\": \"submit\", \"chaos\": ") + plan +
        ", \"batch\": [" + kTinyJob + "]}\n" +
        "{\"op\": \"submit\", \"batch\": [" + kTinyJob + "]}\n";

    const auto lines = serveLines(engine, request);
    EXPECT_EQ(countContaining(lines, "\"event\": \"batch_done\""), 2);
    EXPECT_EQ(countContaining(lines, "\"event\": \"job_timeout\""), 1);
    EXPECT_EQ(countContaining(lines, "\"event\": \"job_retried\""), 1);
    EXPECT_EQ(countContaining(lines, "\"timeouts\": 1"), 1);
    EXPECT_EQ(countContaining(lines, "\"timeouts\": 0"), 1);
    EXPECT_EQ(countContaining(lines, "job.deadline"), 1);
    EXPECT_EQ(countContaining(lines, "\"failed\": 0"), 2);
    EXPECT_FALSE(uksim::chaos::ChaosEngine::instance().enabled());
}

TEST(ServeProtocol, SubmitRejectsInvalidChaosPlan)
{
    ServerEngine engine = inProcessEngine();
    const auto lines = serveLines(
        engine,
        std::string("{\"op\": \"submit\", \"chaos\": "
                    "{\"schema\": \"wrong\"}, \"batch\": [") +
            kTinyJob + "]}\n");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"event\": \"error\""), std::string::npos);
    EXPECT_EQ(countContaining(lines, "batch_accepted"), 0);
    EXPECT_FALSE(uksim::chaos::ChaosEngine::instance().enabled());
}
