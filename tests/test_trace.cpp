/**
 * @file
 * Observability subsystem: stall attribution invariant, counter
 * registry semantics, Chrome-trace export, and tracing neutrality
 * (enabling the event trace must not change simulation results).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "simt/assembler.hpp"
#include "simt/gpu.hpp"
#include "test_common.hpp"
#include "trace/events.hpp"
#include "trace/export.hpp"
#include "trace/registry.hpp"
#include "trace/stall.hpp"

using namespace uksim;

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser, just enough to round-trip our own exports.
// ---------------------------------------------------------------------------

struct JsonValue {
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> fields;

    const JsonValue &at(const std::string &key) const
    {
        auto it = fields.find(key);
        if (it == fields.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }
    bool has(const std::string &key) const
    {
        return fields.count(key) != 0;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            throw std::runtime_error("trailing garbage after JSON value");
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            pos_++;
    }

    char peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            throw std::runtime_error("unexpected end of JSON");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected '") + c +
                                     "' at offset " + std::to_string(pos_));
        pos_++;
    }

    JsonValue value()
    {
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true", JsonValue::Type::Bool);
          case 'f': return literal("false", JsonValue::Type::Bool);
          case 'n': return literal("null", JsonValue::Type::Null);
          default: return number();
        }
    }

    JsonValue literal(const std::string &word, JsonValue::Type type)
    {
        if (text_.compare(pos_, word.size(), word) != 0)
            throw std::runtime_error("bad literal at offset " +
                                     std::to_string(pos_));
        pos_ += word.size();
        JsonValue v;
        v.type = type;
        v.boolean = word == "true";
        return v;
    }

    JsonValue number()
    {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            pos_++;
        if (pos_ == start)
            throw std::runtime_error("bad number at offset " +
                                     std::to_string(start));
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = std::stod(text_.substr(start, pos_ - start));
        return v;
    }

    JsonValue string()
    {
        expect('"');
        JsonValue v;
        v.type = JsonValue::Type::String;
        while (true) {
            if (pos_ >= text_.size())
                throw std::runtime_error("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                break;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    throw std::runtime_error("bad escape");
                char e = text_[pos_++];
                switch (e) {
                  case 'n': v.str += '\n'; break;
                  case 't': v.str += '\t'; break;
                  case 'u': pos_ += 4; v.str += '?'; break;
                  default: v.str += e; break;
                }
            } else {
                v.str += c;
            }
        }
        return v;
    }

    JsonValue array()
    {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        if (peek() == ']') {
            pos_++;
            return v;
        }
        while (true) {
            v.items.push_back(value());
            char c = peek();
            pos_++;
            if (c == ']')
                break;
            if (c != ',')
                throw std::runtime_error("expected ',' in array");
        }
        return v;
    }

    JsonValue object()
    {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        if (peek() == '}') {
            pos_++;
            return v;
        }
        while (true) {
            JsonValue key = string();
            expect(':');
            v.fields[key.str] = value();
            char c = peek();
            pos_++;
            if (c == '}')
                break;
            if (c != ',')
                throw std::runtime_error("expected ',' in object");
        }
        return v;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Crafted kernels.
// ---------------------------------------------------------------------------

/** Data-dependent loop: heavy intra-warp divergence, no memory. */
const char kDivergentLoop[] = R"(
    main:
        mov.u32 r1, %tid;
        rem.u32 r2, r1, 7;
    loop:
        setp.eq.u32 p0, r2, 0;
        @p0 exit;
        sub.u32 r2, r2, 1;
        bra loop;
)";

/** Global load + store: generates DRAM traffic and memory stalls. */
const char kGlobalStore[] = R"(
    main:
        mov.u32 r1, %tid;
        shl.u32 r2, r1, 2;
        ld.param.u32 r3, [0];
        add.u32 r2, r2, r3;
        ld.global.u32 r4, [r2+0];
        add.u32 r4, r4, r1;
        st.global.u32 [r2+0], r4;
        exit;
)";

/** Spawn chain with state records (exercises the spawn-event hooks). */
const char kSpawnChain[] = R"(
    .entry gen
    .microkernel step
    .spawn_state 16
    gen:
        mov.u32 r1, %tid;
        rem.u32 r3, r1, 5;
        add.u32 r3, r3, 1;
        mov.u32 r5, %spawnaddr;
        st.spawn.u32 [r5+0], r3;
        spawn step, r5;
        exit;
    step:
        mov.u32 r2, %spawnaddr;
        ld.spawn.u32 r1, [r2+0];
        ld.spawn.u32 r3, [r1+0];
        setp.eq.u32 p0, r3, 0;
        @p0 exit;
        sub.u32 r3, r3, 1;
        st.spawn.u32 [r1+0], r3;
        spawn step, r1;
        exit;
)";

/** Run a program to completion, optionally with the event trace on. */
SimStats
runProgram(const char *source, uint32_t threads, GpuConfig cfg,
           bool traced)
{
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(source));
    if (traced)
        gpu.eventTrace().enable();
    uint32_t buf = gpu.mallocGlobal(uint64_t(threads) * 4);
    uint32_t params[2] = {buf, threads};
    gpu.toConst(0, params, sizeof(params));
    gpu.launch(threads);
    SimStats stats = gpu.run();
    EXPECT_TRUE(gpu.finished());
    return stats;
}

// ---------------------------------------------------------------------------
// Stall attribution.
// ---------------------------------------------------------------------------

void
expectInvariant(const char *source, uint32_t threads, GpuConfig cfg)
{
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(source));
    uint32_t buf = gpu.mallocGlobal(uint64_t(threads) * 4);
    uint32_t params[2] = {buf, threads};
    gpu.toConst(0, params, sizeof(params));
    gpu.launch(threads);
    const SimStats &stats = gpu.run();

    // Every SM classifies every cycle into exactly one reason.
    trace::StallCounters chip;
    for (int i = 0; i < gpu.numSms(); i++) {
        const trace::StallCounters &sm = gpu.sm(i).stallCounters();
        EXPECT_EQ(sm.total(), stats.cycles) << "sm " << i;
        chip += sm;
    }
    EXPECT_EQ(chip.total(),
              uint64_t(gpu.numSms()) * stats.cycles);
    // The chip-wide mirror in SimStats agrees with the per-SM counters.
    EXPECT_TRUE(chip == stats.stall);
    // Issued slots match the issue counter.
    EXPECT_EQ(stats.stall.count(trace::StallReason::Issued),
              stats.warpIssues);
}

TEST(StallAttribution, SumsToSmsTimesCyclesDivergent)
{
    expectInvariant(kDivergentLoop, 512, test::smallConfig());
}

TEST(StallAttribution, SumsToSmsTimesCyclesMemory)
{
    expectInvariant(kGlobalStore, 512, test::smallConfig());
}

TEST(StallAttribution, SumsToSmsTimesCyclesSpawn)
{
    expectInvariant(kSpawnChain, 256, test::smallConfig());
}

TEST(StallAttribution, SumsToSmsTimesCyclesSpawnBanked)
{
    GpuConfig cfg = test::smallConfig();
    cfg.modelSpawnBankConflicts = true;
    expectInvariant(kSpawnChain, 256, cfg);
}

TEST(StallAttribution, BankedSpawnMemoryChargesConflictCycles)
{
    GpuConfig cfg = test::smallConfig();
    cfg.modelSpawnBankConflicts = true;
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(kSpawnChain));
    uint32_t buf = gpu.mallocGlobal(256 * 4);
    uint32_t params[2] = {buf, 256};
    gpu.toConst(0, params, sizeof(params));
    gpu.launch(256);
    const SimStats &stats = gpu.run();
    // 32 sequential formation stores over 16 banks serialize into
    // extra passes, which the issue slot must account for (Fig. 9).
    EXPECT_GT(stats.stall.count(trace::StallReason::BankConflict), 0u);
}

TEST(StallAttribution, MemoryKernelShowsScoreboardStalls)
{
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(kGlobalStore));
    uint32_t buf = gpu.mallocGlobal(512 * 4);
    uint32_t params[2] = {buf, 512};
    gpu.toConst(0, params, sizeof(params));
    gpu.launch(512);
    const SimStats &stats = gpu.run();
    // Loads go to DRAM; every warp blocks on the reply.
    EXPECT_GT(stats.stall.count(trace::StallReason::Scoreboard), 0u);
}

TEST(StallAttribution, BreakdownTableListsEveryReason)
{
    trace::StallCounters c;
    c.record(trace::StallReason::Issued);
    c.record(trace::StallReason::Scoreboard);
    std::string table = trace::stallBreakdownTable(c, "unit");
    for (int i = 0; i < trace::kNumStallReasons; i++) {
        EXPECT_NE(table.find(trace::stallReasonName(
                      static_cast<trace::StallReason>(i))),
                  std::string::npos);
    }
    EXPECT_NE(table.find("unit"), std::string::npos);
    EXPECT_NE(table.find("total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracing neutrality: observation must not perturb the machine.
// ---------------------------------------------------------------------------

TEST(TraceNeutrality, TracedAndUntracedStatsIdentical)
{
    GpuConfig cfg = test::smallConfig();
    SimStats off = runProgram(kSpawnChain, 256, cfg, false);
    SimStats on = runProgram(kSpawnChain, 256, cfg, true);
    EXPECT_TRUE(off == on);
}

TEST(TraceNeutrality, TracedAndUntracedStatsIdenticalWithConflicts)
{
    GpuConfig cfg = test::smallConfig();
    cfg.modelSpawnBankConflicts = true;
    SimStats off = runProgram(kSpawnChain, 256, cfg, false);
    SimStats on = runProgram(kSpawnChain, 256, cfg, true);
    EXPECT_TRUE(off == on);
}

TEST(TraceNeutrality, TracedAndUntracedStatsIdenticalMemory)
{
    GpuConfig cfg = test::smallConfig();
    SimStats off = runProgram(kGlobalStore, 512, cfg, false);
    SimStats on = runProgram(kGlobalStore, 512, cfg, true);
    EXPECT_TRUE(off == on);
}

// ---------------------------------------------------------------------------
// Event ring buffer.
// ---------------------------------------------------------------------------

TEST(EventTrace, DisabledRecordIsFree)
{
    trace::EventTrace t;
    t.record(trace::EventKind::Issue, 1, 0, 0, 0, 32);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_FALSE(t.enabled());
}

TEST(EventTrace, RingOverwritesOldestAndCountsDrops)
{
    trace::EventTrace t;
    t.enable(4);
    for (uint64_t c = 0; c < 6; c++)
        t.record(trace::EventKind::Issue, c, 0, 0, 0, c);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.dropped(), 2u);
    std::vector<trace::Event> ev = t.ordered();
    ASSERT_EQ(ev.size(), 4u);
    EXPECT_EQ(ev.front().cycle, 2u);    // oldest two were overwritten
    EXPECT_EQ(ev.back().cycle, 5u);
}

TEST(EventTrace, ChromeTraceJsonRoundTrips)
{
    trace::EventTrace t;
    t.enable(64);
    t.record(trace::EventKind::Issue, 10, 0, 3, 0x40, 32, 1);
    t.record(trace::EventKind::MemRequest, 12, 2, 0, 0, 128, 40);
    t.record(trace::EventKind::Spawn, 15, 1, 0, 0x80, 7);

    JsonValue doc = JsonParser(t.chromeTraceJson(2, 1)).parse();
    ASSERT_EQ(doc.type, JsonValue::Type::Object);
    EXPECT_TRUE(doc.has("displayTimeUnit"));
    const JsonValue &events = doc.at("traceEvents");
    ASSERT_EQ(events.type, JsonValue::Type::Array);

    int metadata = 0, spans = 0, instants = 0;
    bool sawSmName = false, sawDramName = false;
    for (const JsonValue &e : events.items) {
        const std::string &ph = e.at("ph").str;
        if (ph == "M") {
            metadata++;
            const std::string &n = e.at("args").at("name").str;
            sawSmName |= n == "SM 0";
            sawDramName |= n == "DRAM partition 0";
        } else if (ph == "X") {
            spans++;
            EXPECT_GT(e.at("dur").number, 0.0);
        } else if (ph == "i") {
            instants++;
        }
        if (ph != "M") {
            EXPECT_TRUE(e.has("ts"));
            EXPECT_TRUE(e.has("pid"));
        }
    }
    EXPECT_EQ(metadata, 3);     // 2 SMs + 1 partition
    EXPECT_EQ(spans, 2);        // issue + mem_request carry durations
    EXPECT_EQ(instants, 1);     // spawn
    EXPECT_TRUE(sawSmName);
    EXPECT_TRUE(sawDramName);
}

TEST(EventTrace, FullRunTraceParsesAndCoversTracks)
{
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(kSpawnChain));
    gpu.eventTrace().enable();
    uint32_t buf = gpu.mallocGlobal(256 * 4);
    uint32_t params[2] = {buf, 256};
    gpu.toConst(0, params, sizeof(params));
    gpu.launch(256);
    gpu.run();

    std::string json = gpu.eventTrace().chromeTraceJson(
        gpu.numSms(), cfg.numMemPartitions);
    JsonValue doc = JsonParser(json).parse();
    const JsonValue &events = doc.at("traceEvents");
    ASSERT_GT(events.items.size(), 0u);

    std::map<std::string, int> byName;
    for (const JsonValue &e : events.items)
        if (e.at("ph").str != "M")
            byName[e.at("name").str]++;
    EXPECT_GT(byName["issue"], 0);
    EXPECT_GT(byName["spawn"], 0);
    EXPECT_GT(byName["warp_formed"], 0);
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(Registry, DefineGetAndDump)
{
    trace::Registry reg;
    reg.define("sm.0.stall.issued", 42);
    reg.define("sm.0.stall.barrier", 7);
    reg.define("sim.ipc", 3.5);
    EXPECT_EQ(reg.size(), 3u);
    EXPECT_TRUE(reg.contains("sim.ipc"));
    EXPECT_DOUBLE_EQ(reg.get("sm.0.stall.issued"), 42.0);
    EXPECT_THROW(reg.get("nope"), std::out_of_range);

    std::string csv = reg.csv();
    EXPECT_NE(csv.find("name,value"), std::string::npos);
    EXPECT_NE(csv.find("sm.0.stall.issued,42"), std::string::npos);
    EXPECT_NE(csv.find("sim.ipc,3.5"), std::string::npos);
}

TEST(Registry, DuplicateDefineRejected)
{
    trace::Registry reg;
    reg.define("a.b", 1);
    EXPECT_THROW(reg.define("a.b", 2), std::invalid_argument);
    // set() upserts instead.
    reg.set("a.b", 2);
    EXPECT_DOUBLE_EQ(reg.get("a.b"), 2.0);
}

TEST(Registry, LeafInteriorConflictsRejected)
{
    trace::Registry reg;
    reg.define("sm.0.stall", 1);
    // "sm.0.stall" is a leaf; it cannot also become an interior node.
    EXPECT_THROW(reg.define("sm.0.stall.issued", 1),
                 std::invalid_argument);
    // And an existing subtree cannot be shadowed by a leaf.
    reg.define("dram.partition.0.read_bytes", 64);
    EXPECT_THROW(reg.define("dram.partition", 1), std::invalid_argument);
}

TEST(Registry, MalformedNamesRejected)
{
    trace::Registry reg;
    EXPECT_THROW(reg.define("", 0), std::invalid_argument);
    EXPECT_THROW(reg.define(".a", 0), std::invalid_argument);
    EXPECT_THROW(reg.define("a.", 0), std::invalid_argument);
    EXPECT_THROW(reg.define("a..b", 0), std::invalid_argument);
    EXPECT_THROW(reg.define("a b", 0), std::invalid_argument);
}

TEST(Registry, AddAccumulates)
{
    trace::Registry reg;
    reg.add("hits", 3);
    reg.add("hits", 4);
    EXPECT_DOUBLE_EQ(reg.get("hits"), 7.0);
}

TEST(Registry, JsonNestsAndRoundTrips)
{
    trace::Registry reg;
    reg.define("sm.0.stall.issued", 42);
    reg.define("sm.1.stall.issued", 13);
    reg.define("sim.cycles", 1000);
    reg.define("sim.ipc", 3.25);

    JsonValue doc = JsonParser(reg.json()).parse();
    ASSERT_EQ(doc.type, JsonValue::Type::Object);
    EXPECT_DOUBLE_EQ(
        doc.at("sm").at("0").at("stall").at("issued").number, 42.0);
    EXPECT_DOUBLE_EQ(
        doc.at("sm").at("1").at("stall").at("issued").number, 13.0);
    EXPECT_DOUBLE_EQ(doc.at("sim").at("cycles").number, 1000.0);
    EXPECT_DOUBLE_EQ(doc.at("sim").at("ipc").number, 3.25);
}

TEST(Registry, FormatValueKeepsIntegersExact)
{
    EXPECT_EQ(trace::Registry::formatValue(42), "42");
    EXPECT_EQ(trace::Registry::formatValue(0), "0");
    EXPECT_EQ(trace::Registry::formatValue(1e15), "1000000000000000");
    EXPECT_EQ(trace::Registry::formatValue(2.5), "2.5");
}

// ---------------------------------------------------------------------------
// Registry export of a full run.
// ---------------------------------------------------------------------------

TEST(RegistryExport, PublishesMachineHierarchy)
{
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(kSpawnChain));
    uint32_t buf = gpu.mallocGlobal(256 * 4);
    uint32_t params[2] = {buf, 256};
    gpu.toConst(0, params, sizeof(params));
    gpu.launch(256);
    const SimStats &stats = gpu.run();

    trace::Registry reg = trace::buildRegistry(gpu);
    EXPECT_DOUBLE_EQ(reg.get("sim.cycles"), double(stats.cycles));
    EXPECT_DOUBLE_EQ(reg.get("stall.issued"),
                     double(stats.stall.count(trace::StallReason::Issued)));

    // Per-SM stall counters exist and sum to the chip-wide view.
    double issued = 0;
    for (int i = 0; i < gpu.numSms(); i++)
        issued += reg.get("sm." + std::to_string(i) + ".stall.issued");
    EXPECT_DOUBLE_EQ(issued, reg.get("stall.issued"));

    // DRAM partition traffic sums to the chip totals.
    double readBytes = 0;
    for (int p = 0; p < cfg.numMemPartitions; p++)
        readBytes += reg.get("dram.partition." + std::to_string(p) +
                             ".read_bytes");
    EXPECT_DOUBLE_EQ(readBytes, double(gpu.dram().totalReadBytes()));

    // Spawn-unit counters are published per SM.
    EXPECT_TRUE(reg.contains("sm.0.spawn.threads_spawned"));
    // The dump is parseable JSON.
    EXPECT_NO_THROW(JsonParser(reg.json()).parse());
}

} // namespace
