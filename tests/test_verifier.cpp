/**
 * @file
 * Tests for the static µ-kernel verifier: each diagnostic class fires on
 * a minimal reproducer with correct pc/line attribution, clean programs
 * come back clean, and the shipped benchmark/example kernels all pass
 * strict verification.
 */

#include <gtest/gtest.h>

#include "example_kernels.hpp"
#include "kernels/raytrace_kernels.hpp"
#include "simt/assembler.hpp"
#include "simt/gpu.hpp"
#include "simt/verifier.hpp"

using namespace uksim;

namespace {

/** Find the first diagnostic with @p id, or nullptr. */
const Diagnostic *
findDiag(const VerifyResult &result, const std::string &id)
{
    for (const Diagnostic &d : result.diagnostics) {
        if (d.id == id)
            return &d;
    }
    return nullptr;
}

// --- Use-before-def ---------------------------------------------------------

TEST(Verifier, UseBeforeDefRegister)
{
    VerifyResult r = verify(assemble(R"(main:
        mov.u32 r1, %tid;
        add.u32 r2, r1, r3;
        st.global.u32 [r1+0], r2;
        exit;
    )"));
    const Diagnostic *d = findDiag(r, "reg-uninit");
    ASSERT_NE(d, nullptr) << r.report();
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_EQ(d->pc, 1u);      // the add
    EXPECT_EQ(d->line, 3);     // source line of the add
    EXPECT_NE(d->message.find("r3"), std::string::npos);
    EXPECT_TRUE(r.failed());
}

TEST(Verifier, UseBeforeDefPredicate)
{
    VerifyResult r = verify(assemble(R"(main:
        mov.u32 r1, %tid;
        @p0 exit;
        st.global.u32 [r1+0], r1;
        exit;
    )"));
    const Diagnostic *d = findDiag(r, "pred-uninit");
    ASSERT_NE(d, nullptr) << r.report();
    EXPECT_EQ(d->pc, 1u);
    EXPECT_EQ(d->line, 3);
}

TEST(Verifier, PredicatedDefDoesNotFullyDefine)
{
    // @p0 mov r2 only *maybe* defines r2; reading it afterwards is an
    // error, and the message says the definition was guarded.
    VerifyResult r = verify(assemble(R"(main:
        mov.u32 r1, %tid;
        setp.eq.u32 p0, r1, 0;
        @p0 mov.u32 r2, 5;
        st.global.u32 [r1+0], r2;
        exit;
    )"));
    const Diagnostic *d = findDiag(r, "reg-uninit");
    ASSERT_NE(d, nullptr) << r.report();
    EXPECT_EQ(d->pc, 3u);
    EXPECT_EQ(d->line, 5);
    EXPECT_NE(d->message.find("guard predicate"), std::string::npos);
}

TEST(Verifier, DefinedOnBothBranchArmsIsClean)
{
    // A diamond where both arms define r2: must-def is the intersection,
    // so the merged state still has r2 defined.
    VerifyResult r = verify(assemble(R"(main:
        mov.u32 r1, %tid;
        setp.eq.u32 p0, r1, 0;
        @p0 bra other;
        mov.u32 r2, 1;
        bra join;
    other:
        mov.u32 r2, 2;
    join:
        st.global.u32 [r1+0], r2;
        exit;
    )"));
    EXPECT_EQ(findDiag(r, "reg-uninit"), nullptr) << r.report();
    EXPECT_FALSE(r.failed());
}

TEST(Verifier, LoopCarriedDefinitionIsClean)
{
    // r2 defined before the loop and updated inside: the back edge must
    // not erase the definition.
    VerifyResult r = verify(assemble(R"(main:
        mov.u32 r1, %tid;
        mov.u32 r2, 0;
    loop:
        add.u32 r2, r2, 1;
        setp.lt.u32 p0, r2, r1;
        @p0 bra loop;
        st.global.u32 [r1+0], r2;
        exit;
    )"));
    EXPECT_EQ(findDiag(r, "reg-uninit"), nullptr) << r.report();
}

TEST(Verifier, VectorLoadDefinesRegisterRange)
{
    VerifyResult r = verify(assemble(R"(main:
        mov.u32 r1, %tid;
        ld.global.v4.f32 r4, [r1+0];
        add.f32 r8, r6, r7;
        st.global.f32 [r1+0], r8;
        exit;
    )"));
    // r6 and r7 come from the vector load; no uninit reads.
    EXPECT_EQ(findDiag(r, "reg-uninit"), nullptr) << r.report();
}

// --- Range checks -----------------------------------------------------------

TEST(Verifier, RegisterBeyondDeclaration)
{
    // The assembler itself rejects regs beyond .reg, so build the
    // program by hand to exercise the verifier's own range check.
    Program p = assemble(R"(main:
        mov.u32 r1, 0;
        st.global.u32 [r1+0], r1;
        exit;
    )");
    p.resources.registers = 2;
    p.code[0].dst = 9;      // mov.u32 r9, 0
    VerifyResult r = verify(p);
    const Diagnostic *d = findDiag(r, "reg-range");
    ASSERT_NE(d, nullptr) << r.report();
    EXPECT_EQ(d->pc, 0u);
    EXPECT_NE(d->message.find("r9"), std::string::npos);
}

TEST(Verifier, RegisterBeyondArchitecturalFile)
{
    Program p = assemble("main:\n mov.u32 r1, 0;\n exit;\n");
    p.code[0].dst = kMaxRegisters + 3;
    VerifyResult r = verify(p);
    const Diagnostic *d = findDiag(r, "reg-range");
    ASSERT_NE(d, nullptr) << r.report();
    EXPECT_NE(d->message.find("architectural"), std::string::npos);
}

TEST(Verifier, PredicateOutOfRange)
{
    Program p = assemble("main:\n setp.eq.u32 p0, %tid, 0;\n exit;\n");
    p.code[0].dst = kNumPredicates;     // p8 does not exist
    VerifyResult r = verify(p);
    EXPECT_NE(findDiag(r, "pred-range"), nullptr) << r.report();
}

// --- Spawn-state bounds and handoff ----------------------------------------

TEST(Verifier, SpawnStateOutOfBounds)
{
    VerifyResult r = verify(assemble(R"(
        .entry gen
        .microkernel step
        .spawn_state 16
        gen:
            mov.u32 r1, %spawnaddr;
            mov.u32 r2, 7;
            st.spawn.u32 [r1+16], r2;
            spawn step, r1;
            exit;
        step:
            exit;
    )"));
    const Diagnostic *d = findDiag(r, "spawn-state-oob");
    ASSERT_NE(d, nullptr) << r.report();
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_EQ(d->pc, 2u);
    EXPECT_EQ(d->line, 8);
    EXPECT_NE(d->message.find("[16, 20)"), std::string::npos);
}

TEST(Verifier, SpawnStateOffsetTrackedThroughArithmetic)
{
    // The offset is built with add, not an immediate in the address.
    VerifyResult r = verify(assemble(R"(
        .entry gen
        .microkernel step
        .spawn_state 16
        gen:
            mov.u32 r1, %spawnaddr;
            add.u32 r1, r1, 12;
            mov.u32 r2, 7;
            st.spawn.u32 [r1+8], r2;
            spawn step, r1;
            exit;
        step:
            exit;
    )"));
    const Diagnostic *d = findDiag(r, "spawn-state-oob");
    ASSERT_NE(d, nullptr) << r.report();
    EXPECT_NE(d->message.find("[20, 24)"), std::string::npos);
}

TEST(Verifier, MicroKernelStatePointerBounds)
{
    // Inside a µ-kernel the state pointer comes from dereferencing the
    // formation word; offsets past .spawn_state through it are errors.
    VerifyResult r = verify(assemble(R"(
        .entry gen
        .microkernel step
        .spawn_state 8
        gen:
            mov.u32 r1, %spawnaddr;
            mov.u32 r2, 1;
            st.spawn.u32 [r1+0], r2;
            spawn step, r1;
            exit;
        step:
            mov.u32 r2, %spawnaddr;
            ld.spawn.u32 r1, [r2+0];
            ld.spawn.u32 r3, [r1+8];
            st.global.u32 [r3+0], r3;
            exit;
    )"));
    const Diagnostic *d = findDiag(r, "spawn-state-oob");
    ASSERT_NE(d, nullptr) << r.report();
    EXPECT_EQ(d->entry, "step");
}

TEST(Verifier, SpawnHandoffCoverageWarning)
{
    // step loads word 1 ([+4]) that gen never stores.
    VerifyResult r = verify(assemble(R"(
        .entry gen
        .microkernel step
        .spawn_state 16
        gen:
            mov.u32 r1, %spawnaddr;
            mov.u32 r2, 1;
            st.spawn.u32 [r1+0], r2;
            spawn step, r1;
            exit;
        step:
            mov.u32 r2, %spawnaddr;
            ld.spawn.u32 r1, [r2+0];
            ld.spawn.u32 r3, [r1+4];
            st.global.u32 [r3+0], r3;
            exit;
    )"));
    const Diagnostic *d = findDiag(r, "spawn-handoff");
    ASSERT_NE(d, nullptr) << r.report();
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_EQ(d->entry, "step");
    EXPECT_NE(d->message.find("[4, 8)"), std::string::npos);
    EXPECT_FALSE(r.failed());
    EXPECT_TRUE(r.failed({.warningsAsErrors = true}));
}

TEST(Verifier, SpawnHandoffUnionOverSpawners)
{
    // Collatz-style: the µ-kernel re-stores only part of the state it
    // reads; the generator covers the rest. The union over spawners must
    // not warn.
    VerifyResult r = verify(assemble(examples::collatzSource()));
    EXPECT_EQ(findDiag(r, "spawn-handoff"), nullptr) << r.report();
}

TEST(Verifier, MicroKernelFormationWordStore)
{
    VerifyResult r = verify(assemble(R"(
        .entry gen
        .microkernel step
        .spawn_state 8
        gen:
            mov.u32 r1, %spawnaddr;
            mov.u32 r2, 1;
            st.spawn.u32 [r1+0], r2;
            spawn step, r1;
            exit;
        step:
            mov.u32 r2, %spawnaddr;
            st.spawn.u32 [r2+0], r2;
            exit;
    )"));
    EXPECT_NE(findDiag(r, "spawn-formation-store"), nullptr) << r.report();
}

TEST(Verifier, NeverSpawnedMicroKernel)
{
    VerifyResult r = verify(assemble(R"(
        .entry main
        .microkernel orphan
        .spawn_state 8
        main:
            exit;
        orphan:
            exit;
    )"));
    const Diagnostic *d = findDiag(r, "never-spawned");
    ASSERT_NE(d, nullptr) << r.report();
    EXPECT_EQ(d->entry, "orphan");
}

// --- Resource bounds ---------------------------------------------------------

TEST(Verifier, ConstOutOfBounds)
{
    VerifyResult r = verify(assemble(R"(
        .const 8
        main:
            ld.param.u32 r1, [8];
            st.global.u32 [r1+0], r1;
            exit;
    )"));
    const Diagnostic *d = findDiag(r, "const-oob");
    ASSERT_NE(d, nullptr) << r.report();
    EXPECT_EQ(d->pc, 0u);
    EXPECT_EQ(d->line, 4);
}

TEST(Verifier, SharedWithoutDeclaration)
{
    VerifyResult r = verify(assemble(R"(main:
        mov.u32 r1, 0;
        ld.shared.u32 r2, [r1+0];
        st.global.u32 [r1+0], r2;
        exit;
    )"));
    EXPECT_NE(findDiag(r, "shared-undeclared"), nullptr) << r.report();
}

TEST(Verifier, LocalOutOfBounds)
{
    VerifyResult r = verify(assemble(R"(
        .local_per_thread 16
        main:
            mov.u32 r1, 16;
            ld.local.u32 r2, [r1+0];
            st.global.u32 [r1+0], r2;
            exit;
    )"));
    EXPECT_NE(findDiag(r, "local-oob"), nullptr) << r.report();
}

// --- Structural checks -------------------------------------------------------

TEST(Verifier, UnreachableCode)
{
    VerifyResult r = verify(assemble(R"(main:
        mov.u32 r1, %tid;
        exit;
    dead:
        st.global.u32 [r1+0], r1;
        exit;
    )"));
    const Diagnostic *d = findDiag(r, "unreachable");
    ASSERT_NE(d, nullptr) << r.report();
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_EQ(d->pc, 2u);
    EXPECT_EQ(d->line, 5);
}

TEST(Verifier, FallThroughIntoAnotherEntry)
{
    // gen's guarded exit can fall through into the step µ-kernel.
    VerifyResult r = verify(assemble(R"(
        .entry gen
        .microkernel step
        .spawn_state 8
        gen:
            mov.u32 r1, %tid;
            setp.eq.u32 p0, r1, 0;
            @p0 exit;
        step:
            mov.u32 r2, %spawnaddr;
            exit;
    )"));
    EXPECT_NE(findDiag(r, "entry-overlap"), nullptr) << r.report();
}

TEST(Verifier, FallOffProgramEnd)
{
    VerifyResult r = verify(assemble(R"(main:
        mov.u32 r1, %tid;
        setp.eq.u32 p0, r1, 0;
        @p0 exit;
        mov.u32 r2, 0;
    )"));
    const Diagnostic *d = findDiag(r, "fall-off-end");
    ASSERT_NE(d, nullptr) << r.report();
    EXPECT_EQ(d->pc, 3u);
}

TEST(Verifier, GuardedBarrier)
{
    VerifyResult r = verify(assemble(R"(main:
        mov.u32 r1, %tid;
        setp.eq.u32 p0, r1, 0;
        @p0 bar;
        exit;
    )"));
    EXPECT_NE(findDiag(r, "bar-guarded"), nullptr) << r.report();
}

TEST(Verifier, BarrierInDivergentRegion)
{
    // The bar sits on one arm of a guarded branch, before reconvergence.
    VerifyResult r = verify(assemble(R"(
        .shared_per_thread 4
        main:
            mov.u32 r1, %tid;
            setp.eq.u32 p0, r1, 0;
            @p0 bra skip;
            bar;
        skip:
            st.global.u32 [r1+0], r1;
            exit;
    )"));
    const Diagnostic *d = findDiag(r, "bar-divergent");
    ASSERT_NE(d, nullptr) << r.report();
    EXPECT_EQ(d->severity, Severity::Warning);
}

TEST(Verifier, BarrierAfterReconvergenceIsClean)
{
    VerifyResult r = verify(assemble(R"(main:
        mov.u32 r1, %tid;
        setp.eq.u32 p0, r1, 0;
        @p0 bra skip;
        mov.u32 r1, 0;
    skip:
        bar;
        st.global.u32 [r1+0], r1;
        exit;
    )"));
    EXPECT_EQ(findDiag(r, "bar-divergent"), nullptr) << r.report();
    EXPECT_EQ(findDiag(r, "bar-guarded"), nullptr) << r.report();
}

TEST(Verifier, BarrierInMicroKernel)
{
    VerifyResult r = verify(assemble(R"(
        .entry gen
        .microkernel step
        .spawn_state 8
        gen:
            mov.u32 r1, %spawnaddr;
            mov.u32 r2, 0;
            st.spawn.u32 [r1+0], r2;
            spawn step, r1;
            exit;
        step:
            bar;
            exit;
    )"));
    EXPECT_NE(findDiag(r, "bar-in-microkernel"), nullptr) << r.report();
}

// --- Hand-built program robustness ------------------------------------------

TEST(Verifier, BranchTargetOutsideProgram)
{
    Program p = assemble("main:\n bra main;\n");
    p.code[0].target = 99;
    VerifyResult r = verify(p);
    EXPECT_NE(findDiag(r, "branch-target"), nullptr) << r.report();
}

TEST(Verifier, EmptyProgram)
{
    Program p;
    VerifyResult r = verify(p);
    EXPECT_NE(findDiag(r, "empty-program"), nullptr);
    EXPECT_TRUE(r.failed());
}

// --- Result formatting / API -------------------------------------------------

TEST(Verifier, DiagnosticFormatAndReport)
{
    VerifyResult r = verify(assemble(R"(main:
        add.u32 r2, r1, r3;
        st.global.u32 [r2+0], r2;
        exit;
    )"));
    ASSERT_GE(r.errorCount(), 1u);
    std::string line = r.diagnostics[0].format();
    EXPECT_NE(line.find("error[reg-uninit]"), std::string::npos) << line;
    EXPECT_NE(line.find("line 2"), std::string::npos) << line;
    EXPECT_NE(line.find("pc 0"), std::string::npos) << line;
    std::string report = r.report();
    EXPECT_NE(report.find("error(s)"), std::string::npos);
    // Diagnostics come back sorted by source line.
    for (size_t i = 1; i < r.diagnostics.size(); i++) {
        if (r.diagnostics[i - 1].line > 0 && r.diagnostics[i].line > 0) {
            EXPECT_LE(r.diagnostics[i - 1].line, r.diagnostics[i].line);
        }
    }
}

TEST(Verifier, VerifyOrThrowStrictAndLenient)
{
    Program bad = assemble(R"(main:
        st.global.u32 [r1+0], r1;
        exit;
    )");
    EXPECT_THROW(verifyOrThrow(bad), std::runtime_error);

    Program warnOnly = assemble(R"(main:
        exit;
    dead:
        exit;
    )");
    EXPECT_NO_THROW(verifyOrThrow(warnOnly));
    EXPECT_THROW(verifyOrThrow(warnOnly, {.warningsAsErrors = true}),
                 std::runtime_error);
}

TEST(Verifier, GpuLoadProgramHonorsVerifyMode)
{
    GpuConfig cfg;
    cfg.numSms = 1;
    cfg.verifyPrograms = VerifyMode::Strict;
    Gpu gpu(cfg);
    Program bad = assemble(R"(main:
        st.global.u32 [r1+0], r1;
        exit;
    )");
    EXPECT_THROW(gpu.loadProgram(std::move(bad)), std::runtime_error);

    Program good = assemble("main:\n exit;\n");
    EXPECT_NO_THROW(gpu.loadProgram(std::move(good)));
}

// --- Shipped kernels must be verifier-clean ---------------------------------

TEST(Verifier, ShippedKernelsVerifyClean)
{
    struct Case {
        const char *name;
        Program program;
    };
    Case cases[] = {
        {"traditional", kernels::buildTraditional()},
        {"microkernel", kernels::buildMicroKernel()},
        {"persistent", kernels::buildPersistentThreads()},
        {"adaptive", kernels::buildMicroKernelAdaptive()},
        {"quickstart", assemble(examples::quickstartSource())},
        {"collatz", assemble(examples::collatzSource())},
        {"divergence-loop", assemble(examples::divergenceLoopSource(64))},
        {"divergence-spawn", assemble(examples::divergenceSpawnSource(64))},
    };
    for (Case &c : cases) {
        VerifyResult r = verify(c.program);
        EXPECT_FALSE(r.failed({.warningsAsErrors = true}))
            << c.name << ":\n" << r.report();
    }
}

} // anonymous namespace
