/**
 * @file
 * Event-driven idle-cycle fast-forward: the engine may skip provably
 * quiescent cycles in bulk, but every observable — SimStats (including
 * the stall attribution and occupancy series), fault records, run
 * outcomes, flight-recorder dumps — must be bit-identical to naive
 * per-cycle stepping, at any host thread count and under any fault
 * policy. The only thing fast-forward is allowed to change is wall
 * time, reported via Gpu::fastForwardStats().
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "simt/assembler.hpp"
#include "simt/gpu.hpp"
#include "test_common.hpp"

using namespace uksim;

namespace {

/**
 * Memory-bound kernel: one DRAM round trip (~hundreds of cycles) per
 * warp with nothing else to issue — the quintessential skippable span.
 */
const char kMemLoad[] = R"(
    .entry main
    main:
        mov.u32 r1, 0;
        ld.global.u32 r0, [r1+0];
        exit;
)";

/** Minimal spawn program: every launch thread spawns one child. */
const char kSpawnOnce[] = R"(
    .entry main
    .microkernel mk
    .spawn_state 16
    main:
        mov.u32 r5, %spawnaddr;
        spawn mk, r5;
        exit;
    mk:
        exit;
)";

/** Global load far beyond the allocated store (guest fault). */
const char kMemOutOfBounds[] = R"(
    .entry main
    main:
        mov.u32 r1, 4026531840;
        ld.global.u32 r0, [r1+0];
        exit;
)";

/**
 * Warp 0 parks at a barrier warp 1 never reaches: a genuine deadlock
 * whose tail is one endless quiescent span.
 */
const char kBarrierDeadlock[] = R"(
    .entry main
    main:
        mov.u32 r0, %tid;
        setp.lt.u32 p0, r0, 32;
        @p0 bra waiter;
        nop;
        nop;
        nop;
        nop;
        nop;
        nop;
        exit;
    waiter:
        bar;
        exit;
)";

struct SimRun {
    RunOutcome outcome = RunOutcome::Completed;
    std::vector<SimFault> faults;
    SimStats stats;
    std::string dump;
    FastForwardStats ff;
    bool ffEnabled = false;
};

SimRun
runProgram(const char *source, const GpuConfig &cfg, uint32_t threads)
{
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(source));
    gpu.mallocGlobal(4096);     // make address 0 a legal load
    gpu.launch(threads);
    try {
        gpu.run();
    } catch (const GuestFault &) {
        // Throw policy: the fault is recorded before the throw; keep
        // the machine state for comparison.
    }
    SimRun r;
    r.outcome = gpu.outcome();
    r.faults = gpu.faults();
    r.stats = gpu.stats();
    r.ff = gpu.fastForwardStats();
    r.ffEnabled = gpu.fastForwardEnabled();
    std::ostringstream os;
    gpu.dumpState(os);
    r.dump = os.str();
    return r;
}

/**
 * The "fast_forward" dump block reports how the engine ran, not what it
 * simulated, so it legitimately differs across fast-forward settings.
 * Remove it before comparing dumps for bit-identity.
 */
std::string
stripFastForwardBlock(std::string dump)
{
    const size_t start = dump.find("  \"fast_forward\": ");
    if (start == std::string::npos)
        return dump;
    const size_t end = dump.find('\n', start);
    dump.erase(start, end == std::string::npos
                          ? std::string::npos
                          : end - start + 1);
    return dump;
}

/** Neutralize the CI matrix's env overrides; tests pin both knobs. */
class FastForward : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        saveEnv("UKSIM_THREADS");
        saveEnv("UKSIM_FASTFWD");
        config_ = test::smallConfig();
    }

    void TearDown() override
    {
        for (const auto &[name, value] : saved_) {
            if (value.has_value())
                setenv(name.c_str(), value->c_str(), 1);
            else
                unsetenv(name.c_str());
        }
    }

    GpuConfig config_;

  private:
    void saveEnv(const char *name)
    {
        const char *env = std::getenv(name);
        saved_.emplace_back(name, env ? std::optional<std::string>(env)
                                      : std::nullopt);
        unsetenv(name);
    }

    std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

// ---------------------------------------------------------------------
// Bit-identity matrix: kernels x fault policies x host thread counts.
// ---------------------------------------------------------------------

TEST_F(FastForward, BitIdenticalAcrossKernelsPoliciesAndThreads)
{
    struct Kernel {
        const char *name;
        const char *source;
        uint32_t threads;
    };
    const Kernel kernels[] = {
        {"pdom-mem", kMemLoad, 64},
        {"uk-spawn", kSpawnOnce, 128},
    };
    for (const Kernel &k : kernels) {
        for (FaultPolicy policy : {FaultPolicy::Throw, FaultPolicy::Trap}) {
            for (int threads : {1, 2, 4}) {
                SCOPED_TRACE(std::string(k.name) + " policy=" +
                             faultPolicyName(policy) + " threads=" +
                             std::to_string(threads));
                GpuConfig cfg = config_;
                cfg.faultPolicy = policy;
                cfg.hostThreads = threads;

                cfg.fastForward = false;
                SimRun naive = runProgram(k.source, cfg, k.threads);
                cfg.fastForward = true;
                SimRun fast = runProgram(k.source, cfg, k.threads);

                EXPECT_EQ(fast.outcome, naive.outcome);
                EXPECT_EQ(fast.faults, naive.faults);
                EXPECT_TRUE(fast.stats == naive.stats);
                EXPECT_TRUE(fast.stats.stall == naive.stats.stall);
                EXPECT_EQ(stripFastForwardBlock(fast.dump),
                          stripFastForwardBlock(naive.dump));
                EXPECT_EQ(naive.ff.cyclesSkipped, 0u);
            }
        }
    }
}

TEST_F(FastForward, StallSumInvariantHoldsAfterSkips)
{
    config_.fastForward = true;
    SimRun r = runProgram(kMemLoad, config_, 64);
    EXPECT_EQ(r.outcome, RunOutcome::Completed);
    // The skipped spans were bulk-attributed, never dropped: every SM
    // still classified every cycle into exactly one stall reason.
    EXPECT_GT(r.ff.cyclesSkipped, 0u);
    EXPECT_EQ(r.stats.stall.total(),
              uint64_t(config_.numSms) * r.stats.cycles);
}

// ---------------------------------------------------------------------
// Watchdog interaction.
// ---------------------------------------------------------------------

TEST_F(FastForward, JumpLargerThanWatchdogWindowIsProgress)
{
    // One DRAM round trip is far longer than the watchdog window. The
    // fast-forward jump lands past several windows' worth of cycles in
    // one step; the in-flight wake-up means the naive loop saw progress
    // every cycle, and the jump must count the same way — no spurious
    // deadlock verdict.
    config_.numSms = 1;
    config_.watchdogCycles = 16;

    config_.fastForward = false;
    SimRun naive = runProgram(kMemLoad, config_, 32);
    config_.fastForward = true;
    SimRun fast = runProgram(kMemLoad, config_, 32);

    EXPECT_EQ(naive.outcome, RunOutcome::Completed);
    EXPECT_EQ(fast.outcome, RunOutcome::Completed);
    EXPECT_GT(fast.ff.largestJump, config_.watchdogCycles);
    EXPECT_TRUE(fast.stats == naive.stats);
}

TEST_F(FastForward, BarrierDeadlockVerdictIdentical)
{
    // A genuine deadlock: after the last issue the machine is one
    // endless quiescent span with no event in flight. Fast-forward must
    // trip the watchdog at the exact naive cycle, not rocket past it to
    // the cycle cap.
    config_.scheduling = SchedulingMode::Block;
    config_.blockSizeThreads = 64;
    config_.watchdogCycles = 1000;
    config_.maxCycles = 100000;

    config_.fastForward = false;
    SimRun naive = runProgram(kBarrierDeadlock, config_, 64);
    config_.fastForward = true;
    SimRun fast = runProgram(kBarrierDeadlock, config_, 64);

    EXPECT_EQ(naive.outcome, RunOutcome::Deadlock);
    EXPECT_EQ(fast.outcome, RunOutcome::Deadlock);
    EXPECT_EQ(fast.stats.cycles, naive.stats.cycles);
    EXPECT_LT(fast.stats.cycles, 5000u);
    EXPECT_TRUE(fast.stats == naive.stats);
    EXPECT_EQ(stripFastForwardBlock(fast.dump),
              stripFastForwardBlock(naive.dump));
}

TEST_F(FastForward, CycleLimitReachedAtExactCap)
{
    // Watchdog off: the deadlocked tail burns the whole budget. The
    // jump is capped at maxCycles, so the run ends at exactly the cap
    // with the full idle tail attributed.
    config_.scheduling = SchedulingMode::Block;
    config_.blockSizeThreads = 64;
    config_.watchdogCycles = 0;
    config_.maxCycles = 20000;

    config_.fastForward = false;
    SimRun naive = runProgram(kBarrierDeadlock, config_, 64);
    config_.fastForward = true;
    SimRun fast = runProgram(kBarrierDeadlock, config_, 64);

    EXPECT_EQ(naive.outcome, RunOutcome::CycleLimit);
    EXPECT_EQ(fast.outcome, RunOutcome::CycleLimit);
    EXPECT_EQ(fast.stats.cycles, 20000u);
    EXPECT_TRUE(fast.stats == naive.stats);
    // Nearly the whole budget was one skip.
    EXPECT_GT(fast.ff.largestJump, 10000u);
}

// ---------------------------------------------------------------------
// Fault attribution.
// ---------------------------------------------------------------------

TEST_F(FastForward, FaultAttributionIdentical)
{
    for (FaultPolicy policy : {FaultPolicy::Throw, FaultPolicy::Trap}) {
        SCOPED_TRACE(faultPolicyName(policy));
        GpuConfig cfg = config_;
        cfg.faultPolicy = policy;

        cfg.fastForward = false;
        SimRun naive = runProgram(kMemOutOfBounds, cfg, 32);
        cfg.fastForward = true;
        SimRun fast = runProgram(kMemOutOfBounds, cfg, 32);

        EXPECT_EQ(naive.outcome, RunOutcome::Faulted);
        EXPECT_EQ(fast.outcome, RunOutcome::Faulted);
        ASSERT_FALSE(naive.faults.empty());
        EXPECT_EQ(fast.faults, naive.faults);
        EXPECT_EQ(fast.faults.front().cycle, naive.faults.front().cycle);
        EXPECT_EQ(fast.faults.front().pc, naive.faults.front().pc);
        EXPECT_TRUE(fast.stats == naive.stats);
    }
}

// ---------------------------------------------------------------------
// Skip statistics and knobs.
// ---------------------------------------------------------------------

TEST_F(FastForward, SkipStatisticsRecorded)
{
    config_.fastForward = true;
    SimRun on = runProgram(kMemLoad, config_, 64);
    EXPECT_TRUE(on.ffEnabled);
    EXPECT_GT(on.ff.cyclesSkipped, 0u);
    EXPECT_GT(on.ff.jumps, 0u);
    EXPECT_GT(on.ff.largestJump, 0u);
    EXPECT_LE(on.ff.largestJump, on.ff.cyclesSkipped);
    EXPECT_NE(on.dump.find("\"fast_forward\": {\"enabled\": true"),
              std::string::npos);
    EXPECT_NE(on.dump.find("\"cycles_skipped\": "), std::string::npos);

    config_.fastForward = false;
    SimRun off = runProgram(kMemLoad, config_, 64);
    EXPECT_FALSE(off.ffEnabled);
    EXPECT_EQ(off.ff.cyclesSkipped, 0u);
    EXPECT_EQ(off.ff.jumps, 0u);
    EXPECT_EQ(off.ff.largestJump, 0u);
    EXPECT_NE(off.dump.find("\"fast_forward\": {\"enabled\": false"),
              std::string::npos);
}

TEST_F(FastForward, EnvOverrideControlsTheSwitch)
{
    config_.fastForward = true;
    for (const char *off : {"0", "off", "false"}) {
        SCOPED_TRACE(off);
        setenv("UKSIM_FASTFWD", off, 1);
        SimRun r = runProgram(kMemLoad, config_, 32);
        EXPECT_FALSE(r.ffEnabled);
        EXPECT_EQ(r.ff.cyclesSkipped, 0u);
    }
    config_.fastForward = false;
    for (const char *on : {"1", "on", "true"}) {
        SCOPED_TRACE(on);
        setenv("UKSIM_FASTFWD", on, 1);
        SimRun r = runProgram(kMemLoad, config_, 32);
        EXPECT_TRUE(r.ffEnabled);
        EXPECT_GT(r.ff.cyclesSkipped, 0u);
    }
    unsetenv("UKSIM_FASTFWD");
}

} // namespace
