/**
 * @file
 * Strict numeric parsing shared by the CLI tools and the UKSIM_*
 * environment overrides: malformed values must be rejected loudly, not
 * silently truncated the way atoi/strtoul would.
 */

#include <gtest/gtest.h>

#include <climits>
#include <cstdlib>
#include <stdexcept>

#include "harness/experiment.hpp"

using namespace uksim::harness;

namespace {

TEST(ParseU64, AcceptsPlainDecimal)
{
    EXPECT_EQ(parseU64("0"), 0u);
    EXPECT_EQ(parseU64("123"), 123u);
    EXPECT_EQ(parseU64("300000"), 300000u);
    EXPECT_EQ(parseU64("18446744073709551615"), UINT64_MAX);
}

TEST(ParseU64, RejectsMalformedInput)
{
    EXPECT_EQ(parseU64(nullptr), std::nullopt);
    EXPECT_EQ(parseU64(""), std::nullopt);
    EXPECT_EQ(parseU64("12x"), std::nullopt);   // atoi would return 12
    EXPECT_EQ(parseU64("x12"), std::nullopt);
    EXPECT_EQ(parseU64("-3"), std::nullopt);
    EXPECT_EQ(parseU64("+3"), std::nullopt);
    EXPECT_EQ(parseU64(" 12"), std::nullopt);
    EXPECT_EQ(parseU64("1 2"), std::nullopt);
    EXPECT_EQ(parseU64("1.5"), std::nullopt);
}

TEST(ParseU64, RejectsOverflow)
{
    EXPECT_EQ(parseU64("18446744073709551616"), std::nullopt);
    EXPECT_EQ(parseU64("99999999999999999999999"), std::nullopt);
}

TEST(ParseInt, EnforcesIntRange)
{
    EXPECT_EQ(parseInt("2147483647"), INT_MAX);
    EXPECT_EQ(parseInt("2147483648"), std::nullopt);
    EXPECT_EQ(parseInt("30"), 30);
    EXPECT_EQ(parseInt("12x"), std::nullopt);
}

/** Scoped UKSIM_* variable that restores the prior value on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *prior = std::getenv(name)) {
            saved_ = prior;
            hadPrior_ = true;
        }
        setenv(name, value, 1);
    }

    ~ScopedEnv()
    {
        if (hadPrior_)
            setenv(name_, saved_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    std::string saved_;
    bool hadPrior_ = false;
};

TEST(EnvOverrides, AppliesWellFormedValues)
{
    ScopedEnv cycles("UKSIM_CYCLES", "12345");
    ScopedEnv sms("UKSIM_SMS", "7");
    ExperimentConfig config;
    applyEnvOverrides(config);
    EXPECT_EQ(config.maxCycles, 12345u);
    EXPECT_EQ(config.baseConfig.numSms, 7);
}

TEST(EnvOverrides, ThrowsNamingTheVariable)
{
    ScopedEnv cycles("UKSIM_CYCLES", "12x");
    ExperimentConfig config;
    try {
        applyEnvOverrides(config);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("UKSIM_CYCLES"), std::string::npos) << msg;
        EXPECT_NE(msg.find("12x"), std::string::npos) << msg;
    }
    // The config is untouched by the rejected value.
    EXPECT_EQ(config.maxCycles, ExperimentConfig().maxCycles);
}

TEST(EnvOverrides, RejectsOutOfRangeSmCount)
{
    ScopedEnv sms("UKSIM_SMS", "99999999999999999999");
    ExperimentConfig config;
    EXPECT_THROW(applyEnvOverrides(config), std::invalid_argument);
}

} // namespace
