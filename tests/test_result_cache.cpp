/**
 * @file
 * Result-cache integrity tests (src/serve/result_cache.hpp).
 *
 * The cache must never serve bytes it cannot verify: a flipped byte, a
 * truncated file or a wrong magic all read as misses (counted as
 * corrupt) so the engine recomputes and rewrites the entry.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "serve/result_cache.hpp"

using namespace uksim::serve;
namespace fs = std::filesystem;

namespace {

const std::string kHash =
    "cbe78789519e4320ada6b5df456e3a6c176fac9f0874d24625efddc54cb154e5";

std::vector<uint8_t>
samplePayload()
{
    std::vector<uint8_t> payload;
    for (int i = 0; i < 300; i++)
        payload.push_back(static_cast<uint8_t>(i * 7 + 3));
    return payload;
}

class ResultCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("uksim_cache_test_" + std::to_string(::getpid()));
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    fs::path dir_;
};

} // anonymous namespace

TEST_F(ResultCacheTest, StoreThenLoadRoundTrips)
{
    ResultCache cache(dir_.string());
    ASSERT_TRUE(cache.enabled());
    const std::vector<uint8_t> payload = samplePayload();

    EXPECT_FALSE(cache.load(kHash).has_value());
    cache.store(kHash, payload);
    const auto loaded = cache.load(kHash);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, payload);

    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().stores, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().corrupt, 0u);
}

TEST_F(ResultCacheTest, EntryPathShardsByHashPrefix)
{
    ResultCache cache(dir_.string());
    const std::string path = cache.entryPath(kHash);
    // <dir>/<first two hex chars>/<hash>.result
    EXPECT_NE(path.find((dir_ / kHash.substr(0, 2)).string()),
              std::string::npos);
    EXPECT_NE(path.find(kHash + ".result"), std::string::npos);
}

TEST_F(ResultCacheTest, FlippedPayloadByteReadsAsCorruptMiss)
{
    ResultCache cache(dir_.string());
    cache.store(kHash, samplePayload());

    // Poison one payload byte past the fixed header.
    const std::string path = cache.entryPath(kHash);
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(20);
    char byte = 0;
    f.read(&byte, 1);
    byte ^= 0x40;
    f.seekp(20);
    f.write(&byte, 1);
    f.close();

    EXPECT_FALSE(cache.load(kHash).has_value());
    EXPECT_EQ(cache.stats().corrupt, 1u);

    // Recompute path: the engine just stores again, and the entry heals.
    cache.store(kHash, samplePayload());
    const auto healed = cache.load(kHash);
    ASSERT_TRUE(healed.has_value());
    EXPECT_EQ(*healed, samplePayload());
}

TEST_F(ResultCacheTest, TruncatedEntryReadsAsCorruptMiss)
{
    ResultCache cache(dir_.string());
    cache.store(kHash, samplePayload());

    const std::string path = cache.entryPath(kHash);
    const auto size = fs::file_size(path);
    fs::resize_file(path, size / 2);

    EXPECT_FALSE(cache.load(kHash).has_value());
    EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST_F(ResultCacheTest, WrongMagicReadsAsCorruptMiss)
{
    ResultCache cache(dir_.string());
    cache.store(kHash, samplePayload());

    const std::string path = cache.entryPath(kHash);
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(0);
    f.write("XX", 2);
    f.close();

    EXPECT_FALSE(cache.load(kHash).has_value());
    EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST_F(ResultCacheTest, EmptyDirDisablesTheCache)
{
    ResultCache cache("");
    EXPECT_FALSE(cache.enabled());
    cache.store(kHash, samplePayload());    // dropped, no filesystem writes
    EXPECT_FALSE(cache.load(kHash).has_value());
    EXPECT_EQ(cache.stats().stores, 0u);
}

TEST_F(ResultCacheTest, DistinctHashesGetDistinctEntries)
{
    ResultCache cache(dir_.string());
    const std::string other =
        "86472a5c90f5d94a9b9e3eb1a7480fe6632f70fc6b5bb93d6305954eafde5d5a";
    std::vector<uint8_t> a = samplePayload();
    std::vector<uint8_t> b = samplePayload();
    b[0] ^= 0xff;
    cache.store(kHash, a);
    cache.store(other, b);
    EXPECT_EQ(*cache.load(kHash), a);
    EXPECT_EQ(*cache.load(other), b);
}
