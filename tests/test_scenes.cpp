/**
 * @file
 * Benchmark scene generators: determinism, scale, and the density
 * properties each scene is supposed to exhibit (paper Sec. VI-B).
 */

#include <gtest/gtest.h>

#include "rt/cpu_tracer.hpp"
#include "rt/kdtree.hpp"
#include "rt/scenes.hpp"

using namespace uksim::rt;

namespace {

SceneParams
tiny()
{
    SceneParams p;
    p.detail = 2;
    p.imageWidth = 32;
    p.imageHeight = 32;
    return p;
}

class SceneGenerators : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SceneGenerators, DeterministicAndNonTrivial)
{
    Scene a = makeSceneByName(GetParam(), tiny());
    Scene b = makeSceneByName(GetParam(), tiny());
    ASSERT_EQ(a.triangles.size(), b.triangles.size());
    EXPECT_GT(a.triangles.size(), 500u);
    for (size_t i = 0; i < a.triangles.size(); i += 101) {
        EXPECT_EQ(a.triangles[i].a.x, b.triangles[i].a.x);
        EXPECT_EQ(a.triangles[i].c.z, b.triangles[i].c.z);
    }
    EXPECT_EQ(a.name, GetParam());
    EXPECT_TRUE(a.bounds().valid());
}

TEST_P(SceneGenerators, DetailScalesTriangleCount)
{
    SceneParams lo = tiny();
    SceneParams hi = tiny();
    hi.detail = 6;
    EXPECT_GT(makeSceneByName(GetParam(), hi).triangles.size(),
              makeSceneByName(GetParam(), lo).triangles.size());
}

TEST_P(SceneGenerators, CameraSeesTheScene)
{
    Scene s = makeSceneByName(GetParam(), tiny());
    KdTree tree = KdTree::build(s.triangles);
    RenderResult r = renderReference(tree, s.camera);
    size_t hits = 0;
    for (const Hit &h : r.hits)
        hits += h.valid() ? 1 : 0;
    // The default camera should have substantial scene coverage.
    EXPECT_GT(double(hits) / r.hits.size(), 0.3)
        << GetParam() << " camera sees too little";
}

INSTANTIATE_TEST_SUITE_P(All, SceneGenerators,
                         ::testing::ValuesIn(benchmarkSceneNames()),
                         [](const auto &info) { return info.param; });

TEST(SceneGenerators, UnknownNameThrows)
{
    EXPECT_THROW(makeSceneByName("cornellbox", tiny()),
                 std::invalid_argument);
}

TEST(SceneGenerators, SeedChangesGeometry)
{
    SceneParams p1 = tiny();
    SceneParams p2 = tiny();
    p2.seed = 0x1234;
    Scene a = makeFairyForest(p1);
    Scene b = makeFairyForest(p2);
    ASSERT_EQ(a.triangles.size(), b.triangles.size());
    bool differs = false;
    for (size_t i = 0; i < a.triangles.size() && !differs; i += 13)
        differs = a.triangles[i].a.x != b.triangles[i].a.x;
    EXPECT_TRUE(differs);
}

/**
 * Density property check: traversal work variance across the image
 * should be highest for the uneven scenes. We verify each scene
 * produces a spread of per-ray intersection-test counts (the divergence
 * source the paper studies) rather than uniform work.
 */
TEST(SceneGenerators, PerRayWorkVaries)
{
    for (const std::string &name : benchmarkSceneNames()) {
        Scene s = makeSceneByName(name, tiny());
        KdTree tree = KdTree::build(s.triangles);
        uint64_t minWork = ~0ull, maxWork = 0;
        for (int y = 0; y < 32; y += 2) {
            for (int x = 0; x < 32; x += 2) {
                TraversalCounters c;
                tree.intersect(s.camera.ray(x, y), c);
                uint64_t work = c.downTraversals + c.intersectionTests;
                minWork = std::min(minWork, work);
                maxWork = std::max(maxWork, work);
            }
        }
        EXPECT_GT(maxWork, minWork + 20)
            << name << " produces uniform work; no divergence to study";
    }
}

TEST(SceneGenerators, BandwidthEstimatesFollowPaperModel)
{
    TraversalCounters c;
    c.downTraversals = 1000;
    c.intersectionTests = 500;
    c.leavesVisited = 200;
    BandwidthEstimate trad = estimateTraditionalBandwidth(c, 100);
    EXPECT_DOUBLE_EQ(trad.readBytes, 1000 * 8.0 + 500 * 48.0);
    EXPECT_DOUBLE_EQ(trad.writeBytes, 100 * 8.0);

    BandwidthEstimate dyn = estimateDynamicBandwidth(c, 100);
    const double invocations = 1000 + 500 + 200 + 100;
    EXPECT_DOUBLE_EQ(dyn.readBytes,
                     trad.readBytes + 48.0 * invocations);
    EXPECT_DOUBLE_EQ(dyn.writeBytes,
                     trad.writeBytes + 52.0 * invocations);
    EXPECT_GT(dyn.totalBytes(), 4.0 * trad.totalBytes());
}

} // namespace
