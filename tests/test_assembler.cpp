/**
 * @file
 * Assembler unit tests: syntax acceptance, encoding, diagnostics.
 */

#include <gtest/gtest.h>

#include "simt/assembler.hpp"

using namespace uksim;

namespace {

TEST(Assembler, MinimalProgram)
{
    Program p = assemble("main:\n  exit;\n");
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p.code[0].op, Opcode::Exit);
    EXPECT_EQ(p.entryPc, 0u);
    EXPECT_EQ(p.labels.at("main"), 0u);
}

TEST(Assembler, AluEncoding)
{
    Program p = assemble(R"(
        add.u32 r1, r2, r3;
        sub.s32 r4, r5, -7;
        mul.f32 r6, r7, 2.5;
        mad.f32 r8, r9, r10, r11;
        exit;
    )");
    ASSERT_EQ(p.size(), 5u);
    EXPECT_EQ(p.code[0].op, Opcode::Add);
    EXPECT_EQ(p.code[0].type, DataType::U32);
    EXPECT_EQ(p.code[0].dst, 1);
    EXPECT_EQ(p.code[0].src[0].reg, 2);
    EXPECT_EQ(p.code[1].src[1].kind, OperandKind::Imm);
    EXPECT_EQ(int32_t(p.code[1].src[1].imm), -7);
    EXPECT_FLOAT_EQ(bitsToFloat(p.code[2].src[1].imm), 2.5f);
    EXPECT_EQ(p.code[3].src[2].reg, 11);
}

TEST(Assembler, UnaryAndConvert)
{
    Program p = assemble(R"(
        rcp.f32 r1, r2;
        sqrt.f32 r3, r4;
        neg.s32 r5, r6;
        cvt.f32.u32 r7, r8;
        cvt.s32.f32 r9, r10;
        exit;
    )");
    EXPECT_EQ(p.code[0].op, Opcode::Rcp);
    EXPECT_EQ(p.code[3].op, Opcode::Cvt);
    EXPECT_EQ(p.code[3].type, DataType::F32);
    EXPECT_EQ(p.code[3].srcType, DataType::U32);
    EXPECT_EQ(p.code[4].type, DataType::S32);
    EXPECT_EQ(p.code[4].srcType, DataType::F32);
}

TEST(Assembler, PredicatesAndGuards)
{
    Program p = assemble(R"(
        setp.lt.f32 p0, r1, r2;
        selp.u32 r3, r4, r5, p0;
        @p0 add.u32 r1, r1, 1;
        @!p1 exit;
        exit;
    )");
    EXPECT_EQ(p.code[0].op, Opcode::SetP);
    EXPECT_EQ(p.code[0].cmp, CmpOp::Lt);
    EXPECT_EQ(p.code[0].dst, 0);
    EXPECT_EQ(p.code[1].src[2].kind, OperandKind::Pred);
    EXPECT_EQ(p.code[2].guardPred, 0);
    EXPECT_FALSE(p.code[2].guardNegated);
    EXPECT_EQ(p.code[3].guardPred, 1);
    EXPECT_TRUE(p.code[3].guardNegated);
}

TEST(Assembler, MemoryForms)
{
    Program p = assemble(R"(
        ld.global.u32 r1, [r2+4];
        st.shared.f32 [r3-8], r4;
        ld.param.u32 r5, [16];
        ld.spawn.v4.f32 r8, [r6+0];
        st.global.v2.u32 [r7], r10;
        ld.const.f32 r11, [r12+64];
        ld.local.u32 r13, [r14];
        exit;
    )");
    EXPECT_EQ(p.code[0].space, MemSpace::Global);
    EXPECT_EQ(p.code[0].memOffset, 4);
    EXPECT_EQ(p.code[1].memOffset, -8);
    EXPECT_EQ(p.code[2].src[0].kind, OperandKind::Imm);
    EXPECT_EQ(p.code[2].src[0].imm, 16u);
    EXPECT_EQ(p.code[3].vecWidth, 4);
    EXPECT_EQ(p.code[3].dst, 8);
    EXPECT_EQ(p.code[4].vecWidth, 2);
    EXPECT_EQ(p.code[5].space, MemSpace::Const);
    EXPECT_EQ(p.code[6].space, MemSpace::Local);
}

TEST(Assembler, SpecialRegisters)
{
    Program p = assemble(R"(
        mov.u32 r1, %tid;
        mov.u32 r2, %slot;
        mov.u32 r3, %spawnaddr;
        mov.u32 r4, %laneid;
        ld.param.f32 r5, [r6+64];
        exit;
    )");
    EXPECT_EQ(p.code[0].src[0].sreg, SpecialReg::Tid);
    EXPECT_EQ(p.code[1].src[0].sreg, SpecialReg::Slot);
    EXPECT_EQ(p.code[2].src[0].sreg, SpecialReg::SpawnMemAddr);
    EXPECT_EQ(p.code[3].src[0].sreg, SpecialReg::LaneId);
}

TEST(Assembler, BranchesResolveLabels)
{
    Program p = assemble(R"(
        main:
            mov.u32 r1, 0;
        loop:
            add.u32 r1, r1, 1;
            setp.lt.u32 p0, r1, 10;
            @p0 bra loop;
            exit;
    )");
    EXPECT_EQ(p.code[3].op, Opcode::Bra);
    EXPECT_EQ(p.code[3].target, p.labels.at("loop"));
}

TEST(Assembler, SpawnRequiresMicroKernelDeclaration)
{
    EXPECT_THROW(assemble(R"(
        main:
            spawn helper, r1;
            exit;
        helper:
            exit;
    )"),
                 AssemblerError);

    Program p = assemble(R"(
        .microkernel helper
        main:
            spawn helper, r1;
            exit;
        helper:
            exit;
    )");
    ASSERT_EQ(p.microKernels.size(), 1u);
    EXPECT_EQ(p.microKernels[0].name, "helper");
    EXPECT_EQ(p.code[0].target, p.microKernels[0].pc);
    EXPECT_EQ(p.microKernelIndex(p.microKernels[0].pc), 0);
}

TEST(Assembler, Directives)
{
    Program p = assemble(R"(
        .entry start
        .reg 16
        .shared_per_thread 48
        .local_per_thread 128
        .global_per_thread 392
        .const 112
        .spawn_state 48
        pad:
            nop;
        start:
            exit;
    )");
    EXPECT_EQ(p.entryPc, 1u);
    EXPECT_EQ(p.resources.registers, 16);
    EXPECT_EQ(p.resources.sharedBytes, 48u);
    EXPECT_EQ(p.resources.localBytes, 128u);
    EXPECT_EQ(p.resources.globalBytes, 392u);
    EXPECT_EQ(p.resources.constBytes, 112u);
    EXPECT_EQ(p.resources.spawnStateBytes, 48u);
}

TEST(Assembler, MeasuredRegisterCount)
{
    Program p = assemble(R"(
        mov.u32 r5, 1;
        ld.global.v4.f32 r8, [r5];
        exit;
    )");
    EXPECT_EQ(p.measuredRegisterCount(), 12);    // v4 writes r8..r11
    EXPECT_EQ(p.resources.registers, 12);        // auto from measurement
}

TEST(Assembler, RegisterBoundEnforced)
{
    EXPECT_THROW(assemble(".reg 4\n mov.u32 r7, 1;\n exit;\n"),
                 AssemblerError);
}

struct BadSource {
    const char *src;
    const char *what;
};

class AssemblerErrors : public ::testing::TestWithParam<BadSource>
{
};

TEST_P(AssemblerErrors, Rejects)
{
    EXPECT_THROW(assemble(GetParam().src), AssemblerError)
        << GetParam().what;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblerErrors,
    ::testing::Values(
        BadSource{"", "empty program"},
        BadSource{"bogus.u32 r1, r2, r3;\nexit;", "unknown opcode"},
        BadSource{"add.u64 r1, r2, r3;\nexit;", "unknown type"},
        BadSource{"add.u32 r1, r2;\nexit;", "operand count"},
        BadSource{"mov.u32 r99, 1;\nexit;", "register out of range"},
        BadSource{"setp.xx.u32 p0, r1, r2;\nexit;", "bad cmp"},
        BadSource{"bra nowhere;\nexit;", "undefined label"},
        BadSource{"ld.bogus.u32 r1, [r2];\nexit;", "bad space"},
        BadSource{"st.const.u32 [r1], r2;\nexit;", "read-only store"},
        BadSource{"ld.global.v3.u32 r1, [r2];\nexit;", "bad width"},
        BadSource{"a:\na:\nexit;", "duplicate label"},
        BadSource{".entry nowhere\nexit;", "undefined entry"},
        BadSource{".microkernel nowhere\nexit;", "undefined microkernel"},
        BadSource{"@p9 exit;", "predicate out of range"},
        BadSource{"exit r1;", "exit takes no operands"}));

TEST(Assembler, ErrorCarriesLineNumber)
{
    try {
        assemble("nop;\nnop;\nbogus;\n");
        FAIL() << "expected AssemblerError";
    } catch (const AssemblerError &e) {
        EXPECT_EQ(e.line(), 3);
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

TEST(Assembler, CommentsAndSemicolons)
{
    Program p = assemble(R"(
        // full line comment
        nop; nop;   # trailing comment
        nop;        // another
        exit;
    )");
    EXPECT_EQ(p.size(), 4u);
}

TEST(Assembler, DisassembleRoundTripMnemonics)
{
    Program p = assemble(R"(
        .microkernel mk
        main:
            setp.ge.u32 p0, r1, 4;
            @p0 bra done;
            ld.global.v4.f32 r8, [r2+16];
            spawn mk, r2;
        done:
            exit;
        mk:
            exit;
    )");
    EXPECT_NE(disassemble(p.code[0]).find("setp.ge.u32"),
              std::string::npos);
    EXPECT_NE(disassemble(p.code[1]).find("@p0 bra"), std::string::npos);
    EXPECT_NE(disassemble(p.code[2]).find("ld.global.v4.f32"),
              std::string::npos);
    EXPECT_NE(disassemble(p.code[3]).find("spawn"), std::string::npos);
    EXPECT_FALSE(p.listing().empty());
}

} // namespace
