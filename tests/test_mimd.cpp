/**
 * @file
 * MIMD-theoretical model tests.
 */

#include <gtest/gtest.h>

#include "simt/assembler.hpp"
#include "simt/gpu.hpp"
#include "simt/mimd.hpp"
#include "test_common.hpp"

using namespace uksim;

namespace {

TEST(Mimd, CountsExactInstructions)
{
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg);
    // Per thread: 2 movs + (tid%4 + 1) iterations x 3 + final setp/bra
    // accounting handled by exact execution, so just pin a simple case:
    gpu.loadProgram(assemble(R"(
        main:
            mov.u32 r1, 0;
            mov.u32 r2, 3;
        loop:
            add.u32 r1, r1, 1;
            setp.lt.u32 p0, r1, r2;
            @p0 bra loop;
            exit;
    )"));
    gpu.launch(1);
    MimdResult r = runMimdIdeal(gpu, 1);
    // 2 setup + 3 iterations x 3 instructions + exit = 12.
    EXPECT_EQ(r.totalInstructions, 12u);
    EXPECT_EQ(r.itemsCompleted, 1u);
    EXPECT_EQ(r.cycles, 12u);   // critical path of the single thread
}

TEST(Mimd, ParallelWorkDividesAcrossLanes)
{
    GpuConfig cfg = test::smallConfig();   // 4 SMs x 32 = 128 lanes
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(R"(
        main:
            mov.u32 r1, 1;
            mov.u32 r2, 2;
            add.u32 r3, r1, r2;
            exit;
    )"));
    gpu.launch(1280);
    MimdResult r = runMimdIdeal(gpu, 1280);
    EXPECT_EQ(r.totalInstructions, 1280u * 4);
    EXPECT_EQ(r.cycles, 1280u * 4 / 128);
    EXPECT_NEAR(r.ipc(cfg), 128.0, 1e-9);
}

TEST(Mimd, DataDependentLoopsDontPenalize)
{
    // The whole point of the MIMD bound: divergent trip counts cost
    // exactly their own instructions, nothing more.
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(R"(
        main:
            mov.u32 r1, %tid;
            rem.u32 r2, r1, 32;
            mov.u32 r3, 0;
        loop:
            setp.ge.u32 p0, r3, r2;
            @p0 bra done;
            add.u32 r3, r3, 1;
            bra loop;
        done:
            exit;
    )"));
    gpu.launch(64);
    MimdResult r = runMimdIdeal(gpu, 64);
    // Thread with tid%32 == k runs 3 setup + 4 per iteration (setp,
    // bra-not-taken, add, bra-back) + 2 to leave + exit.
    uint64_t expect = 0;
    for (int rep = 0; rep < 2; rep++) {
        for (int k = 0; k < 32; k++)
            expect += 3 + 4 * uint64_t(k) + 2 + 1;
    }
    EXPECT_EQ(r.totalInstructions, expect);
    EXPECT_EQ(r.maxThreadInstructions, 3 + 4 * 31u + 2 + 1);
}

TEST(Mimd, SideEffectsReachGlobalMemory)
{
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(R"(
        main:
            mov.u32 r1, %tid;
            ld.param.u32 r2, [0];
            shl.u32 r3, r1, 2;
            add.u32 r2, r2, r3;
            mul.u32 r4, r1, 5;
            st.global.u32 [r2+0], r4;
            exit;
    )"));
    uint32_t out = gpu.mallocGlobal(64 * 4);
    uint32_t params[1] = {out};
    gpu.toConst(0, params, 4);
    gpu.launch(64);
    MimdResult r = runMimdIdeal(gpu, 64);
    EXPECT_EQ(r.itemsCompleted, 64u);
    std::vector<uint32_t> result(64);
    gpu.fromGlobal(out, result.data(), 256);
    for (uint32_t i = 0; i < 64; i++)
        EXPECT_EQ(result[i], i * 5);
}

TEST(Mimd, RunawayThreadThrows)
{
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(R"(
        main:
        forever:
            bra forever;
    )"));
    gpu.launch(1);
    EXPECT_THROW(runMimdIdeal(gpu, 1, 10000), std::runtime_error);
}

TEST(Mimd, SpawnProgramsRejected)
{
    GpuConfig cfg = test::smallConfig();
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(R"(
        .entry main
        .microkernel mk
        .spawn_state 16
        main:
            mov.u32 r1, %spawnaddr;
            spawn mk, r1;
            exit;
        mk:
            exit;
    )"));
    gpu.launch(1);
    EXPECT_THROW(runMimdIdeal(gpu, 1), std::runtime_error);
}

} // namespace
