/**
 * @file
 * End-to-end correctness: the simulated traditional kernel and the
 * simulated dynamic micro-kernel version must both produce exactly the
 * per-pixel hits of the host reference tracer (the kernels implement
 * bit-identical arithmetic).
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "rt/cpu_tracer.hpp"
#include "test_common.hpp"

using namespace uksim;
using namespace uksim::harness;

namespace {

struct RenderCase {
    std::string scene;
    int res;
    int detail;
};

class RenderIntegration : public ::testing::TestWithParam<RenderCase>
{
  protected:
    static ExperimentConfig
    baseExperiment(const RenderCase &rc)
    {
        ExperimentConfig cfg;
        cfg.sceneName = rc.scene;
        cfg.sceneParams.detail = rc.detail;
        cfg.sceneParams.imageWidth = rc.res;
        cfg.sceneParams.imageHeight = rc.res;
        cfg.baseConfig = test::smallConfig();
        cfg.maxCycles = cfg.baseConfig.maxCycles;
        return cfg;
    }

    static void
    expectMatchesReference(const std::vector<rt::Hit> &got,
                           const rt::RenderResult &ref)
    {
        ASSERT_EQ(got.size(), ref.hits.size());
        size_t mismatches = 0;
        for (size_t i = 0; i < got.size() && mismatches < 10; i++) {
            if (got[i].triId != ref.hits[i].triId) {
                ADD_FAILURE() << "pixel " << i << ": triId "
                              << got[i].triId << " != reference "
                              << ref.hits[i].triId;
                mismatches++;
                continue;
            }
            if (ref.hits[i].valid() && got[i].t != ref.hits[i].t) {
                ADD_FAILURE() << "pixel " << i << ": t " << got[i].t
                              << " != reference " << ref.hits[i].t;
                mismatches++;
            }
        }
    }
};

TEST_P(RenderIntegration, TraditionalMatchesCpuReference)
{
    const RenderCase rc = GetParam();
    ExperimentConfig cfg = baseExperiment(rc);
    cfg.kernel = KernelKind::Traditional;

    PreparedScene prepared = prepareScene(rc.scene, cfg.sceneParams);
    rt::RenderResult ref =
        rt::renderReference(prepared.tree, prepared.scene.camera);

    ExperimentResult r = runExperiment(prepared, cfg);
    ASSERT_TRUE(r.ranToCompletion) << "simulation hit the cycle cap";
    EXPECT_EQ(r.stats.itemsCompleted,
              uint64_t(rc.res) * uint64_t(rc.res));
    expectMatchesReference(r.hits, ref);
}

TEST_P(RenderIntegration, MicroKernelMatchesCpuReference)
{
    const RenderCase rc = GetParam();
    ExperimentConfig cfg = baseExperiment(rc);
    cfg.kernel = KernelKind::MicroKernel;

    PreparedScene prepared = prepareScene(rc.scene, cfg.sceneParams);
    rt::RenderResult ref =
        rt::renderReference(prepared.tree, prepared.scene.camera);

    ExperimentResult r = runExperiment(prepared, cfg);
    ASSERT_TRUE(r.ranToCompletion) << "simulation hit the cycle cap";
    EXPECT_EQ(r.stats.itemsCompleted,
              uint64_t(rc.res) * uint64_t(rc.res));
    expectMatchesReference(r.hits, ref);
    EXPECT_GT(r.stats.dynamicThreadsSpawned, 0u);
    EXPECT_GT(r.stats.dynamicWarpsFormed, 0u);
}

TEST_P(RenderIntegration, MicroKernelWithBankConflictsSameImage)
{
    const RenderCase rc = GetParam();
    ExperimentConfig cfg = baseExperiment(rc);
    cfg.kernel = KernelKind::MicroKernel;
    cfg.spawnBankConflicts = true;

    PreparedScene prepared = prepareScene(rc.scene, cfg.sceneParams);
    rt::RenderResult ref =
        rt::renderReference(prepared.tree, prepared.scene.camera);

    ExperimentResult r = runExperiment(prepared, cfg);
    ASSERT_TRUE(r.ranToCompletion);
    expectMatchesReference(r.hits, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Scenes, RenderIntegration,
    ::testing::Values(RenderCase{"conference", 48, 1},
                      RenderCase{"fairyforest", 48, 1},
                      RenderCase{"atrium", 48, 1}),
    [](const auto &info) { return info.param.scene; });

/** Divergence shape: micro-kernels must raise SIMT issue efficiency. */
TEST(RenderShape, MicroKernelImprovesSimtEfficiency)
{
    RenderCase rc{"conference", 64, 2};
    ExperimentConfig cfg;
    cfg.sceneName = rc.scene;
    cfg.sceneParams.detail = rc.detail;
    cfg.sceneParams.imageWidth = rc.res;
    cfg.sceneParams.imageHeight = rc.res;
    cfg.baseConfig = test::smallConfig();
    cfg.maxCycles = cfg.baseConfig.maxCycles;

    PreparedScene prepared = prepareScene(rc.scene, cfg.sceneParams);

    cfg.kernel = KernelKind::Traditional;
    ExperimentResult pdom = runExperiment(prepared, cfg);
    cfg.kernel = KernelKind::MicroKernel;
    ExperimentResult uk = runExperiment(prepared, cfg);

    ASSERT_TRUE(pdom.ranToCompletion);
    ASSERT_TRUE(uk.ranToCompletion);
    EXPECT_GT(uk.simtEfficiency, pdom.simtEfficiency)
        << "dynamic micro-kernels should pack warps better than PDOM";
}

} // namespace
