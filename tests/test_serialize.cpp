/**
 * @file
 * Canonical serialization + job-hash tests (src/harness/serialize.hpp).
 *
 * The content-addressed result cache is only sound if the canonical
 * job hash (a) is identical for identical configurations, (b) changes
 * when ANY semantic field changes, and (c) does NOT change for the
 * engine knobs the identity contract proves bit-neutral (host
 * threads, fast-forward, verification, observability). These tests
 * enumerate that contract field by field, pin golden digests so the
 * byte format cannot drift silently, and round-trip a real result
 * payload.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/serialize.hpp"
#include "serve/job.hpp"
#include "serve/sha256.hpp"

using namespace uksim;
using namespace uksim::harness;

namespace {

/// Pinned sha256 of canonicalJobBytes(smallExperiment(), minimal
/// hand-built program). Moves ONLY when the uksim-job-1 byte format
/// changes; regenerate deliberately alongside a kJobBytesSchema bump
/// (the failing test prints the new digest).
constexpr const char *kGoldenJobBytesDigest =
    "11caf42e9a4c56167a519f8bc9590c9975bcfbc39416cc8c91019dcfc6cb5588";

ExperimentConfig
smallExperiment()
{
    ExperimentConfig config = namedExperiment("uk_conference");
    config.maxCycles = 4000;
    config.sceneParams.detail = 2;
    config.sceneParams.imageWidth = 16;
    config.sceneParams.imageHeight = 16;
    config.baseConfig.numSms = 2;
    return config;
}

struct Perturbation {
    const char *name;
    std::function<void(ExperimentConfig &)> apply;
};

/// Every semantic field of the job identity, one mutation each. The
/// four experiment-level fields that override baseConfig (scheduling,
/// bank conflicts, ideal memory, cycle budget) are perturbed at the
/// experiment level — resolvedGpuConfig would overwrite a baseConfig
/// perturbation of the same field.
const Perturbation kSemanticPerturbations[] = {
    {"kernel", [](ExperimentConfig &c) { c.kernel = KernelKind::Traditional; }},
    {"scheduling", [](ExperimentConfig &c) { c.scheduling = SchedulingMode::Block; }},
    {"spawnBankConflicts", [](ExperimentConfig &c) { c.spawnBankConflicts = true; }},
    {"idealMemory", [](ExperimentConfig &c) { c.idealMemory = true; }},
    {"maxCycles", [](ExperimentConfig &c) { c.maxCycles += 1; }},
    {"sceneName", [](ExperimentConfig &c) { c.sceneName = "atrium"; }},
    {"scene.detail", [](ExperimentConfig &c) { c.sceneParams.detail += 1; }},
    {"scene.imageWidth", [](ExperimentConfig &c) { c.sceneParams.imageWidth += 1; }},
    {"scene.imageHeight", [](ExperimentConfig &c) { c.sceneParams.imageHeight += 1; }},
    {"scene.seed", [](ExperimentConfig &c) { c.sceneParams.seed += 1; }},
    {"numSms", [](ExperimentConfig &c) { c.baseConfig.numSms += 1; }},
    {"warpSize", [](ExperimentConfig &c) { c.baseConfig.warpSize = 16; }},
    {"spPerSm", [](ExperimentConfig &c) { c.baseConfig.spPerSm = 16; }},
    {"maxThreadsPerSm", [](ExperimentConfig &c) { c.baseConfig.maxThreadsPerSm += 32; }},
    {"maxBlocksPerSm", [](ExperimentConfig &c) { c.baseConfig.maxBlocksPerSm += 1; }},
    {"registersPerSm", [](ExperimentConfig &c) { c.baseConfig.registersPerSm += 1; }},
    {"onChipBytesPerSm", [](ExperimentConfig &c) { c.baseConfig.onChipBytesPerSm += 1; }},
    {"spawnLutBytes", [](ExperimentConfig &c) { c.baseConfig.spawnLutBytes += 1; }},
    {"numMemPartitions", [](ExperimentConfig &c) { c.baseConfig.numMemPartitions += 1; }},
    {"bytesPerCyclePerPartition", [](ExperimentConfig &c) { c.baseConfig.bytesPerCyclePerPartition += 1; }},
    {"dramLatencyCycles", [](ExperimentConfig &c) { c.baseConfig.dramLatencyCycles += 1; }},
    {"interconnectLatencyCycles", [](ExperimentConfig &c) { c.baseConfig.interconnectLatencyCycles += 1; }},
    {"onChipLatencyCycles", [](ExperimentConfig &c) { c.baseConfig.onChipLatencyCycles += 1; }},
    {"sfuLatencyCycles", [](ExperimentConfig &c) { c.baseConfig.sfuLatencyCycles += 1; }},
    {"coalesceSegmentBytes", [](ExperimentConfig &c) { c.baseConfig.coalesceSegmentBytes += 32; }},
    {"numOnChipBanks", [](ExperimentConfig &c) { c.baseConfig.numOnChipBanks *= 2; }},
    {"texL1BytesPerSm", [](ExperimentConfig &c) { c.baseConfig.texL1BytesPerSm += 1; }},
    {"texL2BytesPerPartition", [](ExperimentConfig &c) { c.baseConfig.texL2BytesPerPartition += 1; }},
    {"texL1HitLatencyCycles", [](ExperimentConfig &c) { c.baseConfig.texL1HitLatencyCycles += 1; }},
    {"texL2HitLatencyCycles", [](ExperimentConfig &c) { c.baseConfig.texL2HitLatencyCycles += 1; }},
    {"texCacheWays", [](ExperimentConfig &c) { c.baseConfig.texCacheWays *= 2; }},
    {"modelSharedBankConflicts", [](ExperimentConfig &c) { c.baseConfig.modelSharedBankConflicts = false; }},
    {"blockSizeThreads", [](ExperimentConfig &c) { c.baseConfig.blockSizeThreads *= 2; }},
    {"faultPolicy", [](ExperimentConfig &c) { c.baseConfig.faultPolicy = FaultPolicy::Trap; }},
    {"watchdogCycles", [](ExperimentConfig &c) { c.baseConfig.watchdogCycles = 5000; }},
    {"injectMaxFormationRegions", [](ExperimentConfig &c) { c.baseConfig.injectMaxFormationRegions = 2; }},
    {"statsWindowCycles", [](ExperimentConfig &c) { c.baseConfig.statsWindowCycles += 1; }},
    {"clockGhz", [](ExperimentConfig &c) { c.baseConfig.clockGhz += 0.01; }},
};

/// Knobs the identity contract proves bit-neutral: they MUST NOT move
/// the hash, or the cache would recompute identical results.
const Perturbation kNeutralPerturbations[] = {
    {"hostThreads", [](ExperimentConfig &c) { c.baseConfig.hostThreads = 4; }},
    {"fastForward", [](ExperimentConfig &c) { c.baseConfig.fastForward = !c.baseConfig.fastForward; }},
    {"verifyPrograms", [](ExperimentConfig &c) { c.baseConfig.verifyPrograms = VerifyMode::Strict; }},
    {"traceEvents", [](ExperimentConfig &c) { c.traceEvents = true; }},
    {"exportCounters", [](ExperimentConfig &c) { c.exportCounters = true; }},
    {"captureFlightRecord", [](ExperimentConfig &c) { c.captureFlightRecord = true; }},
};

} // anonymous namespace

TEST(JobHash, EqualConfigsHashEqual)
{
    EXPECT_EQ(serve::jobHash(smallExperiment()),
              serve::jobHash(smallExperiment()));
}

TEST(JobHash, StableAcrossRepeatedComputation)
{
    const ExperimentConfig config = smallExperiment();
    const std::string first = serve::jobHash(config);
    ASSERT_EQ(first.size(), 64u);
    for (int i = 0; i < 5; i++)
        EXPECT_EQ(serve::jobHash(config), first);
}

TEST(JobHash, EverySemanticFieldPerturbsTheHash)
{
    const std::string base = serve::jobHash(smallExperiment());
    for (const Perturbation &p : kSemanticPerturbations) {
        SCOPED_TRACE(p.name);
        ExperimentConfig mutated = smallExperiment();
        p.apply(mutated);
        EXPECT_NE(serve::jobHash(mutated), base)
            << "perturbing " << p.name << " must change the job hash";
    }
}

TEST(JobHash, SemanticPerturbationsAreAllDistinct)
{
    // Not just different from the base: no two field mutations may
    // collapse onto one digest (that would hint at fields overwriting
    // each other in the byte stream).
    std::vector<std::string> hashes;
    hashes.push_back(serve::jobHash(smallExperiment()));
    for (const Perturbation &p : kSemanticPerturbations) {
        ExperimentConfig mutated = smallExperiment();
        p.apply(mutated);
        hashes.push_back(serve::jobHash(mutated));
    }
    for (size_t i = 0; i < hashes.size(); i++)
        for (size_t j = i + 1; j < hashes.size(); j++)
            EXPECT_NE(hashes[i], hashes[j]) << "collision " << i << "/" << j;
}

TEST(JobHash, BitNeutralKnobsDoNotPerturbTheHash)
{
    const std::string base = serve::jobHash(smallExperiment());
    for (const Perturbation &p : kNeutralPerturbations) {
        SCOPED_TRACE(p.name);
        ExperimentConfig mutated = smallExperiment();
        p.apply(mutated);
        EXPECT_EQ(serve::jobHash(mutated), base)
            << p.name << " is bit-neutral and must not change the hash";
    }
}

TEST(JobHash, EquivalentSpecsShareOneHash)
{
    // The hash covers the *resolved* GpuConfig: a baseConfig field
    // that resolvedGpuConfig overwrites (here scheduling) does not
    // create a distinct cache entry.
    ExperimentConfig a = smallExperiment();
    ExperimentConfig b = smallExperiment();
    b.baseConfig.scheduling = SchedulingMode::Block;    // overridden
    EXPECT_EQ(serve::jobHash(a), serve::jobHash(b));
}

TEST(JobHash, GoldenCanonicalBytesDigest)
{
    // Pinned digest of the canonical bytes for a hand-built minimal
    // program + default small experiment. This only moves when the
    // serialization format itself changes — which must be deliberate:
    // bump kJobBytesSchema and regenerate (the test prints the new
    // value on failure).
    Program prog;
    Instruction nop{};
    prog.code.push_back(nop);
    prog.entryPc = 0;
    prog.microKernels.push_back({"mk0", 0});
    prog.resources.registers = 8;
    prog.resources.sharedBytes = 16;
    prog.resources.spawnStateBytes = 32;

    const ExperimentConfig config = smallExperiment();
    const std::vector<uint8_t> bytes = canonicalJobBytes(config, prog);
    EXPECT_EQ(serve::sha256Hex(bytes), kGoldenJobBytesDigest);
}

TEST(ResultPayload, RoundTripsByteIdentically)
{
    const ExperimentConfig config = smallExperiment();
    const PreparedScene scene =
        prepareScene(config.sceneName, config.sceneParams);
    const ExperimentResult result = runExperiment(scene, config);

    const std::vector<uint8_t> payload = serializeResult(result);
    ASSERT_FALSE(payload.empty());
    const ExperimentResult parsed = deserializeResult(payload);
    // Round-trip guarantee from the header: re-serializing the parsed
    // result reproduces the payload byte for byte.
    EXPECT_EQ(serializeResult(parsed), payload);

    // Spot-check the identity-contract fields survived.
    EXPECT_EQ(parsed.stats.cycles, result.stats.cycles);
    EXPECT_EQ(parsed.stats.itemsCompleted, result.stats.itemsCompleted);
    EXPECT_EQ(parsed.stats.laneInstructions, result.stats.laneInstructions);
    EXPECT_EQ(parsed.outcome, result.outcome);
    EXPECT_EQ(parsed.ranToCompletion, result.ranToCompletion);
    EXPECT_DOUBLE_EQ(parsed.ipc, result.ipc);
    EXPECT_DOUBLE_EQ(parsed.simtEfficiency, result.simtEfficiency);
    EXPECT_EQ(parsed.hits.size(), result.hits.size());
    EXPECT_EQ(parsed.smStalls.size(), result.smStalls.size());
    EXPECT_EQ(parsed.occupancy.warpsPerSm, result.occupancy.warpsPerSm);
    EXPECT_STREQ(parsed.occupancy.limiter, result.occupancy.limiter);
}

TEST(ResultPayload, RejectsTruncatedPayload)
{
    const ExperimentConfig config = smallExperiment();
    const PreparedScene scene =
        prepareScene(config.sceneName, config.sceneParams);
    std::vector<uint8_t> payload =
        serializeResult(runExperiment(scene, config));
    payload.resize(payload.size() / 2);
    EXPECT_THROW(deserializeResult(payload), std::runtime_error);
}

TEST(ResultPayload, RejectsWrongSchemaTag)
{
    std::vector<uint8_t> payload;
    ByteWriter w;
    w.str("not-a-result-schema");
    payload = w.take();
    EXPECT_THROW(deserializeResult(payload), std::runtime_error);
}
