/**
 * @file
 * Uniformity / divergence classification tests: lane-varying sources
 * taint branches, warp-uniform control stays clean, vote.all
 * re-uniforms, control dependence only applies across rejoining
 * branches — and every branch in every shipped kernel is classified.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "example_kernels.hpp"
#include "kernels/raytrace_kernels.hpp"
#include "simt/analysis/uniformity.hpp"
#include "simt/assembler.hpp"
#include "simt/cfg.hpp"

using namespace uksim;
using namespace uksim::analysis;

namespace {

UniformityResult
analyze(const Program &p)
{
    Cfg cfg(p);
    return analyzeUniformity(p, cfg);
}

/** The conditional branch whose target is @p label. */
const BranchInfo *
branchTargeting(const UniformityResult &r, const Program &p,
                const char *label)
{
    const uint32_t target = p.labels.at(label);
    for (uint32_t pc = 0; pc < p.code.size(); pc++) {
        const Instruction &inst = p.code[pc];
        if (inst.op == Opcode::Bra && inst.guardPred >= 0 &&
            inst.target == target) {
            return r.branchAt(pc);
        }
    }
    return nullptr;
}

TEST(Uniformity, TidBranchIsDivergent)
{
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        setp.lt.u32 p0, r1, 7;
        @p0 bra skip;
        mov.u32 r2, 1;
        skip:
        exit;
    )");
    UniformityResult r = analyze(p);
    const BranchInfo *b = r.branchAt(2);
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->conditional);
    EXPECT_TRUE(b->divergent);
    EXPECT_TRUE(b->sources & kDivTid);
    EXPECT_EQ(divergenceSourceNames(b->sources), "tid");
    EXPECT_EQ(r.divergentBranchCount(), 1u);
}

TEST(Uniformity, ParamBoundedLoopIsUniform)
{
    // Loop trip count comes from a parameter: every lane of every warp
    // sees the same bound, so the back-edge is warp-uniform.
    Program p = assemble(R"(
        .const 8
        main:
        ld.param.u32 r1, [0];
        mov.u32 r2, 0;
        loop:
        add.u32 r2, r2, 1;
        setp.lt.u32 p0, r2, r1;
        @p0 bra loop;
        exit;
    )");
    UniformityResult r = analyze(p);
    EXPECT_EQ(r.divergentBranchCount(), 0u);
    EXPECT_EQ(r.uniformBranchCount(), 1u);
    const BranchInfo *b = r.branchAt(4);
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(b->divergent);
    EXPECT_EQ(b->sources, 0u);
}

TEST(Uniformity, VoteAllReUniformsDivergentPredicate)
{
    // p0 is tid-tainted, but vote.all produces the same value on every
    // lane: the branch on p1 is warp-uniform. This is the paper's
    // adaptive-traversal idiom (vote at the reconvergence point, then a
    // warp-wide branch).
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        setp.lt.u32 p0, r1, 16;
        vote.all p1, p0;
        @p1 bra skip;
        mov.u32 r2, 1;
        skip:
        exit;
    )");
    UniformityResult r = analyze(p);
    const BranchInfo *b = r.branchAt(3);
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(b->divergent) << divergenceSourceNames(b->sources);
    EXPECT_EQ(r.uniformBranchCount(), 1u);
}

TEST(Uniformity, ControlDependenceTaintsValuesAcrossJoin)
{
    // r2 is assigned different constants on the two sides of a
    // tid-divergent if/else; after the join, lanes of one warp hold
    // different r2 values, so the branch on r2 is control-tainted.
    Program p = assemble(R"(main:
        mov.u32 r1, %tid;
        setp.lt.u32 p0, r1, 7;
        @p0 bra then;
        mov.u32 r2, 1;
        bra join;
        then:
        mov.u32 r2, 2;
        join:
        setp.eq.u32 p1, r2, 1;
        @p1 bra skip;
        mov.u32 r3, 1;
        skip:
        exit;
    )");
    UniformityResult r = analyze(p);
    const BranchInfo *b = branchTargeting(r, p, "skip");
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->divergent);
    EXPECT_TRUE(b->sources & kDivControl);
}

TEST(Uniformity, GuardedExitDoesNotTaintFollowingCode)
{
    // `@p0 exit` splits the warp but the paths never rejoin (the
    // immediate post-dominator is the virtual exit), so values defined
    // after it are not mixed across lanes — the param-bounded loop
    // stays uniform.
    Program p = assemble(R"(
        .const 8
        main:
        mov.u32 r1, %tid;
        setp.ge.u32 p0, r1, 64;
        @p0 exit;
        ld.param.u32 r2, [0];
        mov.u32 r3, 0;
        loop:
        add.u32 r3, r3, 1;
        setp.lt.u32 p1, r3, r2;
        @p1 bra loop;
        exit;
    )");
    UniformityResult r = analyze(p);
    const BranchInfo *back = branchTargeting(r, p, "loop");
    ASSERT_NE(back, nullptr);
    EXPECT_FALSE(back->divergent)
        << divergenceSourceNames(back->sources);
    // The guarded exit itself is reported as a divergent warp-splitting
    // point.
    const BranchInfo *ex = r.branchAt(2);
    ASSERT_NE(ex, nullptr);
    EXPECT_TRUE(ex->isExit);
    EXPECT_TRUE(ex->divergent);
}

TEST(Uniformity, SpawnGuardTaintIsRecorded)
{
    Program p = assemble(R"(
        .entry main
        .microkernel uk
        .spawn_state 4
        .const 4
        main:
        mov.u32 r1, %tid;
        mov.u32 r6, %spawnaddr;
        st.spawn.u32 [r6+0], r1;
        setp.lt.u32 p0, r1, 7;
        @p0 spawn uk, r6;
        exit;
        uk:
        mov.u32 r2, %spawnaddr;
        ld.spawn.u32 r3, [r2+0];
        ld.spawn.u32 r4, [r3+0];
        exit;
    )");
    UniformityResult r = analyze(p);
    ASSERT_EQ(r.spawnGuards.size(), 1u);
    EXPECT_NE(r.spawnGuards.begin()->second & kDivTid, 0);
}

TEST(Uniformity, LaneVaryingLoadAddressTaintsResult)
{
    // A global load at a tid-derived address returns lane-varying data;
    // branching on it is memory-divergent.
    Program p = assemble(R"(
        .const 4
        main:
        mov.u32 r1, %tid;
        ld.param.u32 r2, [0];
        shl.u32 r3, r1, 2;
        add.u32 r3, r2, r3;
        ld.global.u32 r4, [r3+0];
        setp.eq.u32 p0, r4, 0;
        @p0 bra skip;
        mov.u32 r5, 1;
        skip:
        exit;
    )");
    UniformityResult r = analyze(p);
    const BranchInfo *b = branchTargeting(r, p, "skip");
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->divergent);
    EXPECT_TRUE(b->sources & kDivMemory);
}

// --- Shipped kernels --------------------------------------------------------

struct NamedProgram {
    const char *name;
    Program program;
};

/** Pcs of blocks reachable from the launch entry or any µ-kernel. */
std::set<uint32_t>
reachablePcs(const Program &p)
{
    Cfg cfg(p);
    std::set<int> blocks;
    std::vector<int> work;
    auto seed = [&](uint32_t pc) {
        const int b = cfg.blockOf(pc);
        if (blocks.insert(b).second)
            work.push_back(b);
    };
    seed(p.entryPc);
    for (const MicroKernelEntry &mk : p.microKernels)
        seed(mk.pc);
    while (!work.empty()) {
        const int b = work.back();
        work.pop_back();
        for (int s : cfg.blocks()[b].successors) {
            if (s != Cfg::kVirtualExit && blocks.insert(s).second)
                work.push_back(s);
        }
    }
    std::set<uint32_t> pcs;
    for (int b : blocks) {
        for (uint32_t pc = cfg.blocks()[b].first;
             pc <= cfg.blocks()[b].last; pc++) {
            pcs.insert(pc);
        }
    }
    return pcs;
}

std::vector<NamedProgram>
shippedPrograms()
{
    std::vector<NamedProgram> v;
    v.push_back({"traditional", kernels::buildTraditional()});
    v.push_back({"microkernel", kernels::buildMicroKernel()});
    v.push_back({"persistent-threads", kernels::buildPersistentThreads()});
    v.push_back({"microkernel-adaptive",
                 kernels::buildMicroKernelAdaptive()});
    v.push_back({"quickstart", assemble(examples::quickstartSource())});
    v.push_back({"collatz", assemble(examples::collatzSource())});
    v.push_back({"divergence-loop",
                 assemble(examples::divergenceLoopSource(64))});
    v.push_back({"divergence-spawn",
                 assemble(examples::divergenceSpawnSource(64))});
    return v;
}

TEST(Uniformity, EveryShippedBranchIsClassified)
{
    for (const NamedProgram &np : shippedPrograms()) {
        UniformityResult r = analyze(np.program);
        for (const BranchInfo &b : r.branches) {
            // Classification is total: a conditional branch is either
            // divergent with at least one source, or uniform with none.
            if (b.divergent)
                EXPECT_NE(b.sources, 0u) << np.name << " pc " << b.pc;
            else
                EXPECT_EQ(b.sources, 0u) << np.name << " pc " << b.pc;
            EXPECT_FALSE(b.entries.empty())
                << np.name << " pc " << b.pc;
        }
        // The table only contains real branch points, and it contains
        // every Bra reachable from some entry point.
        std::set<uint32_t> tablePcs;
        for (const BranchInfo &b : r.branches) {
            EXPECT_TRUE(np.program.code[b.pc].op == Opcode::Bra ||
                        np.program.code[b.pc].op == Opcode::Exit)
                << np.name << " pc " << b.pc;
            tablePcs.insert(b.pc);
        }
        const std::set<uint32_t> reach = reachablePcs(np.program);
        for (uint32_t pc = 0; pc < np.program.code.size(); pc++) {
            if (np.program.code[pc].op == Opcode::Bra &&
                reach.count(pc)) {
                EXPECT_TRUE(tablePcs.count(pc))
                    << np.name << ": reachable bra at pc " << pc
                    << " is unclassified";
            }
        }
    }
}

TEST(Uniformity, DivergenceHeavyKernelsHaveDivergentBranches)
{
    // The ray-tracing benchmark kernels and the divergence examples are
    // divergence-heavy by design: the analysis must find divergence.
    for (const NamedProgram &np : shippedPrograms()) {
        UniformityResult r = analyze(np.program);
        EXPECT_GE(r.divergentBranchCount(), 1u) << np.name;
    }
}

TEST(Uniformity, AdaptiveKernelVoteBranchesAreUniform)
{
    // The adaptive µ-kernel's whole point: vote.all collapses the
    // per-lane continue/spawn decision into a warp-uniform branch. The
    // non-adaptive µ-kernel has no uniform conditional branch at all.
    UniformityResult adaptive =
        analyze(kernels::buildMicroKernelAdaptive());
    EXPECT_GE(adaptive.uniformBranchCount(), 2u);
    UniformityResult plain = analyze(kernels::buildMicroKernel());
    EXPECT_EQ(plain.uniformBranchCount(), 0u);
}

} // namespace
