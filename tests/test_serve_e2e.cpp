/**
 * @file
 * End-to-end serve determinism tests (ISSUE acceptance criteria).
 *
 * These tests tie the whole chain together: the engine's identity
 * contract (bit-identical results at any host thread count, with
 * fast-forward on or off) is what makes the canonical job hash a sound
 * cache key, and the verified-fingerprint snapshot protocol is what
 * makes crash recovery bit-identical to an uninterrupted run. Every
 * assertion here compares canonical result payloads byte for byte
 * against a direct runExperiment baseline.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "harness/experiment.hpp"
#include "harness/serialize.hpp"
#include "serve/engine.hpp"
#include "serve/executor.hpp"
#include "serve/job.hpp"
#include "serve/sha256.hpp"
#include "serve/snapshot.hpp"

using namespace uksim;
using namespace uksim::harness;
using namespace uksim::serve;

namespace fs = std::filesystem;

namespace {

JobSpec
tinySpec()
{
    JobSpec spec;
    spec.name = "uk_conference";
    spec.cycles = 6000;
    spec.detail = 2;
    spec.res = 16;
    spec.sms = 2;
    return spec;
}

/// Direct, uninstrumented baseline for tinySpec(): the canonical
/// payload the serve stack must reproduce byte for byte.
const std::vector<uint8_t> &
baselinePayload()
{
    static const std::vector<uint8_t> payload = [] {
        const ExperimentConfig config = resolveJobSpec(tinySpec());
        const PreparedScene scene =
            prepareScene(config.sceneName, config.sceneParams);
        return serializeResult(runExperiment(scene, config));
    }();
    return payload;
}

std::vector<std::string>
runBatchCollect(ServerEngine &engine, const std::vector<JobSpec> &jobs,
                BatchManifest &manifest)
{
    std::vector<std::string> events;
    manifest = engine.runBatch(
        jobs, [&](const std::string &line) { events.push_back(line); });
    return events;
}

int
countContaining(const std::vector<std::string> &lines,
                const std::string &needle)
{
    int n = 0;
    for (const std::string &line : lines)
        if (line.find(needle) != std::string::npos)
            n++;
    return n;
}

class ServeE2eTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("uksim_serve_e2e_" + std::to_string(::getpid()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    EngineOptions cachedOptions(int workers = 0,
                                uint64_t snapshotCycles = 0) const
    {
        EngineOptions opts;
        opts.cacheDir = (dir_ / "cache").string();
        opts.workers = workers;
        opts.snapshotCycles = snapshotCycles;
        return opts;
    }

    fs::path dir_;
};

} // anonymous namespace

TEST_F(ServeE2eTest, ByteIdenticalAcrossThreadsAndFastForward)
{
    // The premise of the whole cache: hostThreads and fastForward are
    // bit-neutral, so one hash may stand for all these runs.
    const ExperimentConfig base = resolveJobSpec(tinySpec());
    const std::string hash = jobHash(base);
    const PreparedScene scene =
        prepareScene(base.sceneName, base.sceneParams);

    for (int threads : {1, 2, 4}) {
        for (bool ff : {false, true}) {
            SCOPED_TRACE(testing::Message()
                         << "threads=" << threads << " ff=" << ff);
            ExperimentConfig config = base;
            config.baseConfig.hostThreads = threads;
            config.baseConfig.fastForward = ff;
            EXPECT_EQ(jobHash(config), hash);
            const std::vector<uint8_t> payload =
                serializeResult(runExperiment(scene, config));
            EXPECT_EQ(payload, baselinePayload());
        }
    }
}

TEST_F(ServeE2eTest, SecondBatchServesByteIdenticalCacheHit)
{
    const std::string baseSha = sha256Hex(baselinePayload());

    BatchManifest first;
    {
        ServerEngine engine(cachedOptions());
        runBatchCollect(engine, {tinySpec()}, first);
    }
    ASSERT_EQ(first.computed, 1);
    ASSERT_EQ(first.failed, 0);
    EXPECT_FALSE(first.jobs[0].cacheHit);
    EXPECT_EQ(first.jobs[0].resultSha256, baseSha);

    // A fresh engine over the same cache directory — as after a server
    // restart — must serve the job as a hit without computing, and the
    // payload must be the exact bytes of the direct run.
    BatchManifest second;
    ServerEngine engine(cachedOptions());
    runBatchCollect(engine, {tinySpec()}, second);
    ASSERT_EQ(second.cacheHits, 1);
    EXPECT_EQ(second.computed, 0);
    EXPECT_TRUE(second.jobs[0].cacheHit);
    EXPECT_EQ(second.jobs[0].attempts, 0);
    EXPECT_EQ(second.jobs[0].resultSha256, baseSha);

    const auto cached =
        engine.cache().load(jobHash(resolveJobSpec(tinySpec())));
    ASSERT_TRUE(cached.has_value());
    EXPECT_EQ(*cached, baselinePayload());
}

TEST_F(ServeE2eTest, PoisonedCacheEntryIsDetectedAndRecomputed)
{
    {
        ServerEngine engine(cachedOptions());
        BatchManifest m;
        runBatchCollect(engine, {tinySpec()}, m);
        ASSERT_EQ(m.computed, 1);
    }

    // Poison one payload byte in the stored entry.
    const std::string hash = jobHash(resolveJobSpec(tinySpec()));
    ServerEngine engine(cachedOptions());
    const std::string path = engine.cache().entryPath(hash);
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekg(40);
        char byte = 0;
        f.read(&byte, 1);
        byte ^= 0x01;
        f.seekp(40);
        f.write(&byte, 1);
    }

    BatchManifest m;
    runBatchCollect(engine, {tinySpec()}, m);
    ASSERT_EQ(m.cacheHits, 0);
    ASSERT_EQ(m.computed, 1);
    EXPECT_GE(engine.cache().stats().corrupt, 1u);
    EXPECT_EQ(m.jobs[0].resultSha256, sha256Hex(baselinePayload()));

    // The recompute healed the entry on disk.
    const auto healed = engine.cache().load(hash);
    ASSERT_TRUE(healed.has_value());
    EXPECT_EQ(*healed, baselinePayload());
}

TEST_F(ServeE2eTest, ExecutorSnapshotsAreBitNeutralAndResumable)
{
    const ExperimentConfig config = resolveJobSpec(tinySpec());
    const std::string hash = jobHash(config);
    const PreparedScene scene =
        prepareScene(config.sceneName, config.sceneParams);
    const std::string snapPath = (dir_ / "job.snap.json").string();

    // Chunked run with snapshots must still be byte-identical to the
    // uninstrumented baseline (pausing is bit-neutral).
    ExecOptions chunked;
    chunked.snapshotCycles = 2000;
    chunked.snapshotPath = snapPath;
    int snapshots = 0;
    chunked.onSnapshot = [&](const Snapshot &) { snapshots++; };
    const ExecResult full = executeJob(scene, config, hash, chunked);
    EXPECT_EQ(full.payload, baselinePayload());
    EXPECT_GE(snapshots, 2);
    EXPECT_FALSE(full.resumeVerified);
    EXPECT_GE(full.progress.samples().size(), 2u);

    // Resume from the last durable snapshot: replay verifies the
    // machine fingerprint at the snapshot cycle, then the final
    // payload is byte-identical again.
    const auto snap = readSnapshotFile(snapPath);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->jobHash, hash);
    EXPECT_EQ(snap->chunkCycles, 2000u);
    ASSERT_GT(snap->cycle, 0u);

    ExecOptions resume = chunked;
    resume.resumeFrom = &*snap;
    const ExecResult resumed = executeJob(scene, config, hash, resume);
    EXPECT_TRUE(resumed.resumeVerified);
    EXPECT_EQ(resumed.payload, baselinePayload());
}

TEST_F(ServeE2eTest, BogusSnapshotFingerprintThrowsMismatch)
{
    const ExperimentConfig config = resolveJobSpec(tinySpec());
    const std::string hash = jobHash(config);
    const PreparedScene scene =
        prepareScene(config.sceneName, config.sceneParams);

    Snapshot bogus;
    bogus.jobHash = hash;
    bogus.cycle = 2000;
    bogus.chunkCycles = 2000;
    bogus.index = 1;
    bogus.stateSha256 = std::string(64, 'f');    // cannot match anything

    ExecOptions opts;
    opts.snapshotCycles = 2000;
    opts.resumeFrom = &bogus;
    EXPECT_THROW(executeJob(scene, config, hash, opts), SnapshotMismatch);
}

TEST_F(ServeE2eTest, EngineRejectsBogusLeftoverSnapshotAndRecovers)
{
    // A stale/corrupt snapshot in the spool (say, from a dirty crash)
    // must not poison the job: the engine verifies the fingerprint
    // during replay, rejects it, deletes it, and recomputes fresh —
    // with the exact baseline bytes.
    EngineOptions opts = cachedOptions(0, 2000);
    opts.spoolDir = (dir_ / "spool").string();  // workers=0 needs it explicit
    ServerEngine engine(opts);

    const std::string hash = jobHash(resolveJobSpec(tinySpec()));
    Snapshot bogus;
    bogus.jobHash = hash;
    bogus.cycle = 2000;
    bogus.chunkCycles = 2000;
    bogus.index = 1;
    bogus.stateSha256 = std::string(64, 'f');
    fs::create_directories(opts.spoolDir);
    const std::string snapPath = opts.spoolDir + "/" + hash + ".snap.json";
    writeSnapshotFile(snapPath, bogus);
    ASSERT_TRUE(fs::exists(snapPath));

    BatchManifest m;
    const auto events = runBatchCollect(engine, {tinySpec()}, m);
    ASSERT_EQ(m.failed, 0);
    ASSERT_EQ(m.computed, 1);
    EXPECT_EQ(m.jobs[0].attempts, 2);   // rejected resume, then fresh
    EXPECT_FALSE(m.jobs[0].resumed);
    EXPECT_EQ(m.jobs[0].resultSha256, sha256Hex(baselinePayload()));
    EXPECT_GE(countContaining(events, "\"event\": \"snapshot_rejected\""),
              1);
    // The bogus snapshot must be gone so the next batch starts clean.
    EXPECT_FALSE(fs::exists(snapPath));
}

TEST_F(ServeE2eTest, KilledWorkerResumesBitIdentically)
{
    // The headline acceptance criterion: a worker SIGKILLed mid-run
    // (via the deterministic kill_after_snapshots hook) is respawned,
    // resumes from its last durable snapshot with the fingerprint
    // verified, and produces a byte-identical result.
    ServerEngine engine(cachedOptions(/*workers=*/1,
                                      /*snapshotCycles=*/2000));
    JobSpec spec = tinySpec();
    spec.killAfterSnapshots = 1;

    BatchManifest m;
    const auto events = runBatchCollect(engine, {spec}, m);
    ASSERT_EQ(m.failed, 0) << m.jobs[0].error;
    ASSERT_EQ(m.computed, 1);
    EXPECT_EQ(m.resumed, 1);
    EXPECT_TRUE(m.jobs[0].resumed);
    EXPECT_GE(m.jobs[0].attempts, 2);
    EXPECT_EQ(m.jobs[0].resultSha256, sha256Hex(baselinePayload()));

    EXPECT_GE(countContaining(events, "\"event\": \"worker_crashed\""), 1);
    EXPECT_GE(countContaining(events, "\"event\": \"job_resumed\""), 1);

    // And the crash-recovered result is now a normal cache entry: a
    // second batch without the kill hook serves it as a hit.
    BatchManifest again;
    runBatchCollect(engine, {tinySpec()}, again);
    EXPECT_EQ(again.cacheHits, 1);
    EXPECT_EQ(again.jobs[0].resultSha256, sha256Hex(baselinePayload()));
}
