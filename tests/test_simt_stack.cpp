/**
 * @file
 * PDOM reconvergence stack unit tests, including the paper's Fig. 2
 * data-dependent loop scenario.
 */

#include <gtest/gtest.h>

#include "simt/simt_stack.hpp"

using namespace uksim;

namespace {

constexpr uint64_t
lanes(std::initializer_list<int> ids)
{
    uint64_t m = 0;
    for (int i : ids)
        m |= uint64_t{1} << i;
    return m;
}

TEST(SimtStack, LinearAdvance)
{
    SimtStack s;
    s.reset(5, 0xf);
    EXPECT_EQ(s.pc(), 5u);
    EXPECT_EQ(s.activeMask(), 0xfu);
    s.advance();
    EXPECT_EQ(s.pc(), 6u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, UniformBranch)
{
    SimtStack s;
    s.reset(0, 0xff);
    s.branch(0xff, 10, 20);     // all taken
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.depth(), 1u);
    s.branch(0, 3, 20);         // none taken
    EXPECT_EQ(s.pc(), 11u);
}

TEST(SimtStack, DivergeAndReconverge)
{
    SimtStack s;
    s.reset(0, 0xf);
    // Branch at pc 0: lanes {0,1} taken to 10, {2,3} fall to 1,
    // reconverge at 20.
    s.branch(lanes({0, 1}), 10, 20);
    EXPECT_EQ(s.depth(), 3u);
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.activeMask(), lanes({0, 1}));

    // Taken path runs 10..19.
    for (uint32_t pc = 10; pc < 20; pc++) {
        EXPECT_EQ(s.pc(), pc);
        s.advance();
    }
    // Taken path reached the reconvergence point: fall path resumes.
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.activeMask(), lanes({2, 3}));
    for (uint32_t pc = 1; pc < 20; pc++)
        s.advance();
    // Both paths done: reconverged with the full mask.
    EXPECT_EQ(s.pc(), 20u);
    EXPECT_EQ(s.activeMask(), 0xfu);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, Figure2Loop)
{
    // The paper's Fig. 2: loop B where threads need different trip
    // counts; reconvergence at C. Program shape:
    //   0: A
    //   1: B (loop body)
    //   2: bra 1 if lane still looping, reconverge at 3
    //   3: C
    SimtStack s;
    s.reset(0, 0xf);
    s.advance();                // A done, pc=1
    // Iteration 1: all four lanes loop again.
    s.advance();                // B
    s.branch(0xf, 1, 3);
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.activeMask(), 0xfu);
    // Iteration 2: lanes {0,2} exit the loop.
    s.advance();
    s.branch(lanes({1, 3}), 1, 3);
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.activeMask(), lanes({1, 3}));   // half the SPs idle
    // Iteration 3: last lanes leave.
    s.advance();
    s.branch(0, 1, 3);
    // All lanes proceed to C together.
    EXPECT_EQ(s.pc(), 3u);
    EXPECT_EQ(s.activeMask(), 0xfu);
}

TEST(SimtStack, ExitAllLanesEmptiesStack)
{
    SimtStack s;
    s.reset(0, 0x3);
    s.exitLanes(0x3);
    EXPECT_TRUE(s.empty());
}

TEST(SimtStack, PredicatedExitKeepsSurvivors)
{
    SimtStack s;
    s.reset(7, 0xf);
    s.exitLanes(lanes({1, 2}));
    EXPECT_EQ(s.activeMask(), lanes({0, 3}));
    EXPECT_EQ(s.pc(), 8u);      // survivors continue after the exit
}

TEST(SimtStack, ExitInsideDivergedPath)
{
    SimtStack s;
    s.reset(0, 0xf);
    s.branch(lanes({0, 1}), 10, 20);
    // Taken path exits both its lanes.
    s.exitLanes(lanes({0, 1}));
    // Fall-through path resumes.
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.activeMask(), lanes({2, 3}));
    // When it reconverges, the reconvergence entry holds only
    // the survivors.
    for (uint32_t pc = 1; pc < 20; pc++)
        s.advance();
    EXPECT_EQ(s.pc(), 20u);
    EXPECT_EQ(s.activeMask(), lanes({2, 3}));
}

TEST(SimtStack, ExitOnlyReconvergence)
{
    // Divergence whose paths never rejoin (reconverge pc = sentinel).
    SimtStack s;
    s.reset(0, 0x3);
    s.branch(0x1, 5, SimtStack::kNoReconverge);
    EXPECT_EQ(s.pc(), 5u);
    s.exitLanes(0x1);           // taken lane dies
    EXPECT_EQ(s.pc(), 1u);      // fall-through lane resumes
    EXPECT_EQ(s.activeMask(), 0x2u);
    s.exitLanes(0x2);
    EXPECT_TRUE(s.empty());
}

TEST(SimtStack, NestedDivergence)
{
    SimtStack s;
    s.reset(0, 0xff);
    s.branch(0x0f, 100, 200);           // outer split
    EXPECT_EQ(s.pc(), 100u);
    s.branch(0x03, 150, 180);           // inner split on the taken path
    EXPECT_EQ(s.pc(), 150u);
    EXPECT_EQ(s.activeMask(), 0x03u);
    EXPECT_EQ(s.depth(), 5u);
    // Drain inner taken path to 180.
    for (uint32_t pc = 150; pc < 180; pc++)
        s.advance();
    EXPECT_EQ(s.pc(), 101u);            // inner fall path
    EXPECT_EQ(s.activeMask(), 0x0cu);
    for (uint32_t pc = 101; pc < 180; pc++)
        s.advance();
    EXPECT_EQ(s.pc(), 180u);            // inner reconverged
    EXPECT_EQ(s.activeMask(), 0x0fu);
    for (uint32_t pc = 180; pc < 200; pc++)
        s.advance();
    EXPECT_EQ(s.pc(), 1u);              // outer fall path
    EXPECT_EQ(s.activeMask(), 0xf0u);
}

TEST(SimtStack, BranchDirectlyToReconvergencePoint)
{
    SimtStack s;
    s.reset(0, 0xf);
    // Taken target IS the reconvergence point: taken lanes wait there.
    s.branch(lanes({0}), 20, 20);
    // Not-taken path runs first (taken entry popped immediately).
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.activeMask(), lanes({1, 2, 3}));
    for (uint32_t pc = 1; pc < 20; pc++)
        s.advance();
    EXPECT_EQ(s.pc(), 20u);
    EXPECT_EQ(s.activeMask(), 0xfu);
}

} // namespace
