/**
 * @file
 * Unit tests for the deterministic chaos harness (harness/chaos.hpp)
 * and the JSON chaos-plan bridge (serve/chaos_plan.hpp): spec parsing,
 * trigger semantics (probability / on-hit / every-N / max-fires),
 * seed determinism and site independence, counter export, child-count
 * absorption, scoped install/restore, and plan round-trips.
 */

#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/chaos.hpp"
#include "serve/chaos_plan.hpp"
#include "serve/json.hpp"
#include "trace/registry.hpp"

using namespace uksim;
using chaos::ChaosEngine;
using chaos::Rule;

namespace {

Rule
probRule(std::string site, double p, uint64_t maxFires = 0)
{
    Rule r;
    r.site = std::move(site);
    r.probability = p;
    r.maxFires = maxFires;
    return r;
}

Rule
onHitRule(std::string site, uint64_t hit, uint64_t maxFires = 0)
{
    Rule r;
    r.site = std::move(site);
    r.onHit = hit;
    r.maxFires = maxFires;
    return r;
}

Rule
everyRule(std::string site, uint64_t every, uint64_t maxFires = 0)
{
    Rule r;
    r.site = std::move(site);
    r.everyHits = every;
    r.maxFires = maxFires;
    return r;
}

/// Every test starts and ends with the process-wide engine disabled so
/// suites cannot leak chaos into each other.
class ChaosTest : public ::testing::Test
{
  protected:
    void SetUp() override { ChaosEngine::instance().disable(); }
    void TearDown() override { ChaosEngine::instance().disable(); }

    static std::vector<bool> pattern(const char *site, int hits)
    {
        std::vector<bool> fired;
        for (int i = 0; i < hits; i++)
            fired.push_back(chaos::fire(site));
        return fired;
    }
};

TEST_F(ChaosTest, DisabledEngineNeverFiresOrTracks)
{
    ChaosEngine &ce = ChaosEngine::instance();
    EXPECT_FALSE(ce.enabled());
    for (int i = 0; i < 8; i++)
        EXPECT_FALSE(chaos::fire("cache.read.miss"));
    EXPECT_EQ(ce.totalFires(), 0u);
    EXPECT_TRUE(ce.fireCounts().empty());
}

TEST_F(ChaosTest, ParseSpecReadsSeedAndRuleForms)
{
    const auto [seed, rules] = ChaosEngine::parseSpec(
        "42:cache.read.corrupt=0.5,worker.kill@2*1,snapshot.write.torn%3");
    EXPECT_EQ(seed, 42u);
    ASSERT_EQ(rules.size(), 3u);
    EXPECT_EQ(rules[0].site, "cache.read.corrupt");
    EXPECT_DOUBLE_EQ(rules[0].probability, 0.5);
    EXPECT_EQ(rules[0].maxFires, 0u);
    EXPECT_EQ(rules[1].site, "worker.kill");
    EXPECT_EQ(rules[1].onHit, 2u);
    EXPECT_EQ(rules[1].maxFires, 1u);
    EXPECT_EQ(rules[2].site, "snapshot.write.torn");
    EXPECT_EQ(rules[2].everyHits, 3u);
}

TEST_F(ChaosTest, ParseSpecRejectsMalformedInput)
{
    const char *bad[] = {
        "",                 // empty
        "42",               // no colon
        "42:",              // no rules
        "x:a=0.5",          // non-numeric seed
        "1:a",              // rule without trigger
        "1:a=1.5",          // probability > 1
        "1:a=-0.5",         // probability < 0
        "1:a@0",            // on-hit is 1-based
        "1:a%0",            // every-N must be positive
        "1:a=0.5*x",        // non-numeric max-fires
        "1:Bad=0.5",        // uppercase site name
        "1:=0.5",           // empty site name
    };
    for (const char *spec : bad)
        EXPECT_THROW(ChaosEngine::parseSpec(spec), std::invalid_argument)
            << "spec: " << spec;
}

TEST_F(ChaosTest, ConfigureRejectsDuplicateSites)
{
    EXPECT_THROW(ChaosEngine::instance().configure(
                     1, {onHitRule("a.b", 1), probRule("a.b", 0.5)}),
                 std::invalid_argument);
    EXPECT_FALSE(ChaosEngine::instance().enabled());
}

TEST_F(ChaosTest, OnHitFiresExactlyOnThatHit)
{
    ChaosEngine::instance().configure(7, {onHitRule("fork.fail", 3)});
    const std::vector<bool> fired = pattern("fork.fail", 6);
    const std::vector<bool> want = {false, false, true,
                                    false, false, false};
    EXPECT_EQ(fired, want);
    EXPECT_EQ(ChaosEngine::instance().fires("fork.fail"), 1u);
}

TEST_F(ChaosTest, EveryNthHitFiresPeriodically)
{
    ChaosEngine::instance().configure(7, {everyRule("a.b", 2)});
    const std::vector<bool> fired = pattern("a.b", 6);
    const std::vector<bool> want = {false, true, false,
                                    true,  false, true};
    EXPECT_EQ(fired, want);
    EXPECT_EQ(ChaosEngine::instance().fires("a.b"), 3u);
}

TEST_F(ChaosTest, MaxFiresStopsInjection)
{
    ChaosEngine::instance().configure(7, {everyRule("a.b", 1, 2)});
    const std::vector<bool> fired = pattern("a.b", 5);
    const std::vector<bool> want = {true, true, false, false, false};
    EXPECT_EQ(fired, want);
    EXPECT_EQ(ChaosEngine::instance().fires("a.b"), 2u);
}

TEST_F(ChaosTest, UnruledSitesNeverFireAndAreNotCounted)
{
    ChaosEngine::instance().configure(7, {onHitRule("a.b", 1)});
    for (int i = 0; i < 4; i++)
        EXPECT_FALSE(chaos::fire("other.site"));
    EXPECT_EQ(ChaosEngine::instance().fireCounts().count("other.site"),
              0u);
}

TEST_F(ChaosTest, ProbabilityPatternIsSeedDeterministic)
{
    ChaosEngine &ce = ChaosEngine::instance();
    ce.configure(1234, {probRule("stream.read.eintr", 0.5)});
    const std::vector<bool> first = pattern("stream.read.eintr", 64);
    // Same seed, fresh configure: identical drawing sequence.
    ce.configure(1234, {probRule("stream.read.eintr", 0.5)});
    EXPECT_EQ(pattern("stream.read.eintr", 64), first);
    // Different seed: 64 coin flips collide with probability 2^-64.
    ce.configure(4321, {probRule("stream.read.eintr", 0.5)});
    EXPECT_NE(pattern("stream.read.eintr", 64), first);
    // The pattern is non-degenerate at p=0.5 over 64 draws.
    int fires = 0;
    for (bool b : first)
        fires += b ? 1 : 0;
    EXPECT_GT(fires, 0);
    EXPECT_LT(fires, 64);
}

TEST_F(ChaosTest, SitesDrawFromIndependentStreams)
{
    ChaosEngine &ce = ChaosEngine::instance();
    ce.configure(99, {probRule("a.b", 0.5)});
    const std::vector<bool> alone = pattern("a.b", 32);
    // Re-run with a second active site whose hits interleave: the
    // firing pattern at "a.b" must not shift.
    ce.configure(99, {probRule("a.b", 0.5), probRule("c.d", 0.5)});
    std::vector<bool> interleaved;
    for (int i = 0; i < 32; i++) {
        chaos::fire("c.d");
        interleaved.push_back(chaos::fire("a.b"));
        chaos::fire("c.d");
    }
    EXPECT_EQ(interleaved, alone);
}

TEST_F(ChaosTest, FireCountsAndJsonSkipZeroSites)
{
    ChaosEngine &ce = ChaosEngine::instance();
    ce.configure(7, {everyRule("b.x", 1, 2), onHitRule("a.y", 1),
                     probRule("quiet.site", 0.0)});
    pattern("b.x", 3);
    pattern("a.y", 1);
    pattern("quiet.site", 5);
    const std::map<std::string, uint64_t> counts = ce.fireCounts();
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts.at("a.y"), 1u);
    EXPECT_EQ(counts.at("b.x"), 2u);
    EXPECT_EQ(ce.totalFires(), 3u);
    EXPECT_EQ(ChaosEngine::countsToJson(counts),
              "{\"a.y\": 1, \"b.x\": 2}");
    EXPECT_EQ(ChaosEngine::countsToJson({}), "{}");
}

TEST_F(ChaosTest, AbsorbMergesChildCountsWithoutAdvancingRules)
{
    ChaosEngine &ce = ChaosEngine::instance();
    ce.configure(7, {onHitRule("worker.kill", 1)});
    ce.absorb({{"worker.kill", 2}, {"job.deadline", 1}});
    EXPECT_EQ(ce.fires("worker.kill"), 2u);
    EXPECT_EQ(ce.fires("job.deadline"), 1u);
    EXPECT_EQ(ce.totalFires(), 3u);
    // Absorbed counts are bookkeeping only: the local rule still sees
    // hit #1 next and fires.
    EXPECT_TRUE(chaos::fire("worker.kill"));
    EXPECT_EQ(ce.fires("worker.kill"), 3u);
}

TEST_F(ChaosTest, MirrorCountersPublishesChaosNamespace)
{
    ChaosEngine &ce = ChaosEngine::instance();
    ce.configure(7, {everyRule("cache.write.torn", 1)});
    pattern("cache.write.torn", 2);
    trace::Registry reg;
    reg.define("sm.0.cycles", 10);
    ce.mirrorCounters(reg);
    ASSERT_TRUE(reg.contains("chaos.cache.write.torn"));
    EXPECT_DOUBLE_EQ(reg.get("chaos.cache.write.torn"), 2.0);
    // Disabled engine mirrors nothing (observation-neutral).
    ce.disable();
    trace::Registry clean;
    ce.mirrorCounters(clean);
    EXPECT_TRUE(clean.empty());
}

TEST_F(ChaosTest, ScopedChaosInstallsAndRestores)
{
    ChaosEngine &ce = ChaosEngine::instance();
    ce.configureFromSpec("5:outer.site@1");
    {
        chaos::ScopedChaos scoped("9:inner.site@1*1");
        EXPECT_TRUE(ce.enabled());
        EXPECT_EQ(ce.seed(), 9u);
        EXPECT_TRUE(chaos::fire("inner.site"));
        EXPECT_FALSE(chaos::fire("outer.site"));
    }
    // Outer config back, with fresh counters.
    EXPECT_TRUE(ce.enabled());
    EXPECT_EQ(ce.seed(), 5u);
    EXPECT_EQ(ce.totalFires(), 0u);
    EXPECT_TRUE(chaos::fire("outer.site"));
    ce.disable();
    {
        chaos::ScopedChaos scoped(3, {onHitRule("a.b", 1)});
        EXPECT_TRUE(ce.enabled());
    }
    EXPECT_FALSE(ce.enabled());
}

TEST_F(ChaosTest, ExportImportRoundTripResetsCounters)
{
    ChaosEngine &ce = ChaosEngine::instance();
    ce.configure(1234, {probRule("a.b", 0.5)});
    const std::vector<bool> fresh = pattern("a.b", 32);
    const ChaosEngine::Config saved = ce.exportConfig();
    ce.disable();
    ce.importConfig(saved);
    EXPECT_TRUE(ce.enabled());
    EXPECT_EQ(ce.seed(), 1234u);
    EXPECT_EQ(ce.totalFires(), 0u);
    // Reimport restarts every site stream from the seed.
    EXPECT_EQ(pattern("a.b", 32), fresh);
}

TEST_F(ChaosTest, ConfigureFromEnvHonorsVariable)
{
    ChaosEngine &ce = ChaosEngine::instance();
    ::setenv(chaos::kChaosEnvVar, "11:env.site@1", 1);
    EXPECT_TRUE(ce.configureFromEnv());
    EXPECT_TRUE(ce.enabled());
    EXPECT_EQ(ce.seed(), 11u);
    ::unsetenv(chaos::kChaosEnvVar);
    ce.disable();
    EXPECT_FALSE(ce.configureFromEnv());
    EXPECT_FALSE(ce.enabled());
}

// ---------------------------------------------------------------------
// JSON chaos plans (serve/chaos_plan.hpp)
// ---------------------------------------------------------------------

TEST_F(ChaosTest, ChaosPlanParsesAllRuleForms)
{
    const ChaosEngine::Config cfg = serve::chaosPlanFromText(
        "{\"schema\": \"ukchaos-plan-1\", \"seed\": 42, \"rules\": ["
        "{\"site\": \"cache.read.corrupt\", \"p\": 0.5},"
        "{\"site\": \"worker.kill\", \"on_hit\": 2, \"max_fires\": 1},"
        "{\"site\": \"snapshot.write.torn\", \"every\": 3}]}");
    EXPECT_TRUE(cfg.enabled);
    EXPECT_EQ(cfg.seed, 42u);
    ASSERT_EQ(cfg.rules.size(), 3u);
    EXPECT_DOUBLE_EQ(cfg.rules[0].probability, 0.5);
    EXPECT_EQ(cfg.rules[1].onHit, 2u);
    EXPECT_EQ(cfg.rules[1].maxFires, 1u);
    EXPECT_EQ(cfg.rules[2].everyHits, 3u);
}

TEST_F(ChaosTest, ChaosPlanRejectsSchemaViolations)
{
    const char *bad[] = {
        "[1, 2]",  // not an object
        "{\"schema\": \"wrong\", \"seed\": 1, \"rules\": []}",
        // Missing site.
        "{\"schema\": \"ukchaos-plan-1\", \"seed\": 1, "
        "\"rules\": [{\"p\": 0.5}]}",
        // No trigger field.
        "{\"schema\": \"ukchaos-plan-1\", \"seed\": 1, "
        "\"rules\": [{\"site\": \"a.b\"}]}",
        // Two trigger fields.
        "{\"schema\": \"ukchaos-plan-1\", \"seed\": 1, "
        "\"rules\": [{\"site\": \"a.b\", \"p\": 0.5, \"on_hit\": 1}]}",
        // Probability out of range.
        "{\"schema\": \"ukchaos-plan-1\", \"seed\": 1, "
        "\"rules\": [{\"site\": \"a.b\", \"p\": 1.5}]}",
        // on_hit is 1-based.
        "{\"schema\": \"ukchaos-plan-1\", \"seed\": 1, "
        "\"rules\": [{\"site\": \"a.b\", \"on_hit\": 0}]}",
        // Bad site name.
        "{\"schema\": \"ukchaos-plan-1\", \"seed\": 1, "
        "\"rules\": [{\"site\": \"A.B\", \"p\": 0.5}]}",
        // Duplicate site.
        "{\"schema\": \"ukchaos-plan-1\", \"seed\": 1, \"rules\": ["
        "{\"site\": \"a.b\", \"p\": 0.5}, {\"site\": \"a.b\", "
        "\"every\": 2}]}",
    };
    for (const char *doc : bad)
        EXPECT_THROW(serve::chaosPlanFromText(doc), serve::JsonError)
            << "doc: " << doc;
}

TEST_F(ChaosTest, ChaosPlanRoundTripsCanonically)
{
    ChaosEngine::Config cfg;
    cfg.enabled = true;
    cfg.seed = 314;
    cfg.rules = {probRule("cache.read.corrupt", 0.25),
                 onHitRule("worker.kill", 2, 1),
                 everyRule("snapshot.write.torn", 3)};
    const std::string doc = serve::chaosPlanToJson(cfg);
    // The canonical form is valid JSON carrying the schema tag...
    const serve::JsonValue parsed = serve::parseJson(doc);
    EXPECT_EQ(parsed.stringOr("schema", ""), serve::kChaosPlanSchema);
    // ...and reparses to the identical config.
    const ChaosEngine::Config back = serve::chaosPlanFromText(doc);
    EXPECT_EQ(back.seed, cfg.seed);
    ASSERT_EQ(back.rules.size(), cfg.rules.size());
    for (size_t i = 0; i < cfg.rules.size(); i++) {
        EXPECT_EQ(back.rules[i].site, cfg.rules[i].site);
        EXPECT_DOUBLE_EQ(back.rules[i].probability,
                         cfg.rules[i].probability);
        EXPECT_EQ(back.rules[i].onHit, cfg.rules[i].onHit);
        EXPECT_EQ(back.rules[i].everyHits, cfg.rules[i].everyHits);
        EXPECT_EQ(back.rules[i].maxFires, cfg.rules[i].maxFires);
    }
    // Serialization is a fixed point: canonical in, canonical out.
    EXPECT_EQ(serve::chaosPlanToJson(back), doc);
}

} // namespace
