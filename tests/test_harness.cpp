/**
 * @file
 * Harness plumbing: experiment labels, config description, table
 * formatting, kernel resource analysis (Table II inputs).
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "kernels/kernel_resources.hpp"
#include "kernels/raytrace_kernels.hpp"
#include "kernels/scene_upload.hpp"

using namespace uksim;
using namespace uksim::harness;

namespace {

TEST(Harness, ExperimentLabels)
{
    ExperimentConfig c;
    c.kernel = KernelKind::Traditional;
    c.scheduling = SchedulingMode::Block;
    EXPECT_EQ(c.label(), "PDOM Block");
    c.scheduling = SchedulingMode::Thread;
    EXPECT_EQ(c.label(), "PDOM Warp");
    c.kernel = KernelKind::MicroKernel;
    EXPECT_EQ(c.label(), "u-kernel Warp");
    c.spawnBankConflicts = true;
    c.idealMemory = true;
    EXPECT_EQ(c.label(), "u-kernel Warp +bankconflicts idealmem");
}

TEST(Harness, ConfigDescriptionMentionsTableOne)
{
    GpuConfig c;
    std::string d = describeConfig(c);
    EXPECT_NE(d.find("30 SMs"), std::string::npos);
    EXPECT_NE(d.find("warp 32"), std::string::npos);
    EXPECT_NE(d.find("8 memory modules"), std::string::npos);
}

TEST(Harness, TextTableAlignment)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"short", "1"});
    t.row({"much-longer-name", "23456"});
    std::string s = t.str();
    EXPECT_NE(s.find("much-longer-name"), std::string::npos);
    // All rows share the same width: find column positions.
    size_t firstNl = s.find('\n');
    EXPECT_NE(firstNl, std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Harness, FmtHelper)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(10.0, 0), "10");
}

TEST(KernelResources, TraditionalKernel)
{
    Program p = kernels::buildTraditional();
    auto r = kernels::analyzeProgram(p, "traditional");
    // Table II ballpark: ~22 registers, tens-of-bytes shared, 128 B
    // const, ~388 B global, no spawn state.
    EXPECT_GE(r.registers, 16);
    EXPECT_LE(r.registers, 26);
    EXPECT_EQ(r.sharedBytes, 36u);
    EXPECT_EQ(p.resources.localBytes, 384u);
    EXPECT_EQ(r.globalBytes, 8u);
    EXPECT_EQ(r.constBytes, 128u);
    EXPECT_EQ(r.spawnStateBytes, 0u);
    EXPECT_EQ(r.microKernels, 0);
    EXPECT_GT(r.instructions, 80);
}

TEST(KernelResources, MicroKernelProgram)
{
    Program p = kernels::buildMicroKernel();
    auto r = kernels::analyzeProgram(p, "u-kernel");
    EXPECT_EQ(r.spawnStateBytes, 48u);
    EXPECT_EQ(r.microKernels, 3);
    EXPECT_GE(r.registers, 20);
    EXPECT_LE(r.registers, 28);
    EXPECT_EQ(r.globalBytes, 392u);
    // The three 4-wide vector state accesses exist in the stream.
    int v4Spawn = 0;
    for (const auto &inst : p.code) {
        if (inst.isMemory() && inst.space == MemSpace::Spawn &&
            inst.vecWidth == 4) {
            v4Spawn++;
        }
    }
    EXPECT_GE(v4Spawn, 6);   // 3 loads + 3 stores at minimum
}

TEST(KernelResources, MicroKernelEntriesAreDistinct)
{
    Program p = kernels::buildMicroKernel();
    ASSERT_EQ(p.microKernels.size(), 3u);
    EXPECT_EQ(p.microKernels[0].name, "uk_trav");
    EXPECT_EQ(p.microKernels[1].name, "uk_isect");
    EXPECT_EQ(p.microKernels[2].name, "uk_pop");
    EXPECT_NE(p.microKernels[0].pc, p.microKernels[1].pc);
    EXPECT_EQ(p.entryName, "uk_gen");
}

TEST(Harness, EnvOverrides)
{
    ExperimentConfig cfg;
    setenv("UKSIM_CYCLES", "12345", 1);
    setenv("UKSIM_DETAIL", "3", 1);
    setenv("UKSIM_RES", "96", 1);
    setenv("UKSIM_SMS", "6", 1);
    applyEnvOverrides(cfg);
    unsetenv("UKSIM_CYCLES");
    unsetenv("UKSIM_DETAIL");
    unsetenv("UKSIM_RES");
    unsetenv("UKSIM_SMS");
    EXPECT_EQ(cfg.maxCycles, 12345u);
    EXPECT_EQ(cfg.sceneParams.detail, 3);
    EXPECT_EQ(cfg.sceneParams.imageWidth, 96);
    EXPECT_EQ(cfg.baseConfig.numSms, 6);
}

TEST(SceneUpload, NodeEncodingRoundTrip)
{
    rt::KdNode internal;
    internal.leaf = false;
    internal.axis = 2;
    internal.split = 1.5f;
    internal.left = 77;
    uint32_t w0, w1;
    kernels::encodeNode(internal, w0, w1);
    EXPECT_EQ(w0 & 3u, 2u);
    EXPECT_EQ(w0 >> 2, 77u);
    EXPECT_EQ(w1, floatBits(1.5f));

    rt::KdNode leaf;
    leaf.leaf = true;
    leaf.firstPrim = 123;
    leaf.primCount = 9;
    kernels::encodeNode(leaf, w0, w1);
    EXPECT_EQ(w0 & 3u, 3u);
    EXPECT_EQ(w0 >> 2, 123u);
    EXPECT_EQ(w1, 9u);
}

TEST(SceneUpload, TrianglePackingLayout)
{
    rt::Triangle t{{0, 0, 5}, {2, 0, 5}, {0, 2, 5}};
    rt::WaldTriangle w;
    ASSERT_TRUE(w.precompute(t));
    uint32_t words[12];
    kernels::packTriangle(w, words);
    EXPECT_EQ(words[0], floatBits(w.nU));
    EXPECT_EQ(words[3], w.k * 4);
    EXPECT_EQ(words[4], floatBits(w.bNu));
    EXPECT_EQ(words[9], floatBits(w.cD));
    // ku/kv byte offsets are consistent with the modulo-3 rule.
    uint32_t k = w.k;
    EXPECT_EQ(words[10], ((k + 1) % 3) * 4);
    EXPECT_EQ(words[11], ((k + 2) % 3) * 4);
}

} // namespace
