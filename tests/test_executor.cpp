/**
 * @file
 * Functional ALU semantics, swept across operations with TEST_P.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "simt/executor.hpp"

using namespace uksim;

namespace {

Instruction
make(Opcode op, DataType t)
{
    Instruction i;
    i.op = op;
    i.type = t;
    return i;
}

struct AluCase {
    const char *name;
    Opcode op;
    DataType type;
    uint32_t a, b, c;
    uint32_t expect;
};

class AluSemantics : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(AluSemantics, Evaluates)
{
    const AluCase &tc = GetParam();
    Instruction inst = make(tc.op, tc.type);
    EXPECT_EQ(evalAlu(inst, tc.a, tc.b, tc.c), tc.expect) << tc.name;
}

constexpr uint32_t
u(int32_t v)
{
    return static_cast<uint32_t>(v);
}

INSTANTIATE_TEST_SUITE_P(
    Integer, AluSemantics,
    ::testing::Values(
        AluCase{"add", Opcode::Add, DataType::U32, 7, 9, 0, 16},
        AluCase{"add_wrap", Opcode::Add, DataType::U32, 0xffffffff, 2, 0,
                1},
        AluCase{"sub", Opcode::Sub, DataType::U32, 9, 7, 0, 2},
        AluCase{"sub_wrap", Opcode::Sub, DataType::U32, 3, 5, 0,
                u(-2)},
        AluCase{"mul", Opcode::Mul, DataType::U32, 6, 7, 0, 42},
        AluCase{"mulhi", Opcode::MulHi, DataType::U32, 0x80000000, 4, 0,
                2},
        AluCase{"div", Opcode::Div, DataType::U32, 42, 5, 0, 8},
        AluCase{"div_s", Opcode::Div, DataType::S32, u(-42), 5, 0,
                u(-8)},
        AluCase{"div_by_zero", Opcode::Div, DataType::U32, 42, 0, 0, 0},
        AluCase{"rem", Opcode::Rem, DataType::U32, 42, 5, 0, 2},
        AluCase{"min_s", Opcode::Min, DataType::S32, u(-3), 2, 0, u(-3)},
        AluCase{"min_u", Opcode::Min, DataType::U32, u(-3), 2, 0, 2},
        AluCase{"max_s", Opcode::Max, DataType::S32, u(-3), 2, 0, 2},
        AluCase{"abs_s", Opcode::Abs, DataType::S32, u(-5), 0, 0, 5},
        AluCase{"neg_s", Opcode::Neg, DataType::S32, 5, 0, 0, u(-5)},
        AluCase{"and", Opcode::And, DataType::U32, 0xff00ff00, 0x0ff00ff0,
                0, 0x0f000f00},
        AluCase{"or", Opcode::Or, DataType::U32, 0xf0, 0x0f, 0, 0xff},
        AluCase{"xor", Opcode::Xor, DataType::U32, 0xff, 0x0f, 0, 0xf0},
        AluCase{"not", Opcode::Not, DataType::U32, 0, 0, 0, 0xffffffff},
        AluCase{"shl", Opcode::Shl, DataType::U32, 1, 5, 0, 32},
        AluCase{"shr_u", Opcode::Shr, DataType::U32, 0x80000000, 4, 0,
                0x08000000},
        AluCase{"shr_s", Opcode::Shr, DataType::S32, u(-16), 2, 0,
                u(-4)},
        AluCase{"mad", Opcode::Mad, DataType::U32, 3, 4, 5, 17},
        AluCase{"mov", Opcode::Mov, DataType::U32, 123, 0, 0, 123}),
    [](const auto &info) { return info.param.name; });

TEST(AluFloat, Arithmetic)
{
    auto f = [](float x) { return floatBits(x); };
    EXPECT_EQ(evalAlu(make(Opcode::Add, DataType::F32), f(1.5f), f(2.25f),
                      0),
              f(3.75f));
    EXPECT_EQ(evalAlu(make(Opcode::Sub, DataType::F32), f(1.0f), f(0.5f),
                      0),
              f(0.5f));
    EXPECT_EQ(evalAlu(make(Opcode::Mul, DataType::F32), f(3.0f), f(0.5f),
                      0),
              f(1.5f));
    EXPECT_EQ(evalAlu(make(Opcode::Div, DataType::F32), f(1.0f), f(4.0f),
                      0),
              f(0.25f));
    EXPECT_EQ(evalAlu(make(Opcode::Mad, DataType::F32), f(2.0f), f(3.0f),
                      f(1.0f)),
              f(7.0f));
    EXPECT_EQ(evalAlu(make(Opcode::Sqrt, DataType::F32), f(9.0f), 0, 0),
              f(3.0f));
    EXPECT_EQ(evalAlu(make(Opcode::Rcp, DataType::F32), f(4.0f), 0, 0),
              f(0.25f));
    EXPECT_EQ(evalAlu(make(Opcode::Floor, DataType::F32), f(2.75f), 0, 0),
              f(2.0f));
    EXPECT_EQ(evalAlu(make(Opcode::Abs, DataType::F32), f(-2.0f), 0, 0),
              f(2.0f));
    EXPECT_EQ(evalAlu(make(Opcode::Neg, DataType::F32), f(2.0f), 0, 0),
              f(-2.0f));
    EXPECT_EQ(evalAlu(make(Opcode::Min, DataType::F32), f(-1.0f), f(2.0f),
                      0),
              f(-1.0f));
    EXPECT_EQ(evalAlu(make(Opcode::Max, DataType::F32), f(-1.0f), f(2.0f),
                      0),
              f(2.0f));
}

TEST(AluFloat, DivisionByZeroGivesInf)
{
    uint32_t r = evalAlu(make(Opcode::Div, DataType::F32),
                         floatBits(1.0f), floatBits(0.0f), 0);
    EXPECT_TRUE(std::isinf(bitsToFloat(r)));
}

TEST(AluConvert, Conversions)
{
    Instruction i2f = make(Opcode::Cvt, DataType::F32);
    i2f.srcType = DataType::U32;
    EXPECT_EQ(evalAlu(i2f, 42, 0, 0), floatBits(42.0f));

    Instruction s2f = make(Opcode::Cvt, DataType::F32);
    s2f.srcType = DataType::S32;
    EXPECT_EQ(evalAlu(s2f, u(-3), 0, 0), floatBits(-3.0f));

    Instruction f2s = make(Opcode::Cvt, DataType::S32);
    f2s.srcType = DataType::F32;
    EXPECT_EQ(evalAlu(f2s, floatBits(-2.7f), 0, 0), u(-2));

    Instruction f2u = make(Opcode::Cvt, DataType::U32);
    f2u.srcType = DataType::F32;
    EXPECT_EQ(evalAlu(f2u, floatBits(3.9f), 0, 0), 3u);
    EXPECT_EQ(evalAlu(f2u, floatBits(-1.0f), 0, 0), 0u);
}

struct CmpCase {
    const char *name;
    CmpOp cmp;
    DataType type;
    uint32_t a, b;
    bool expect;
};

class CmpSemantics : public ::testing::TestWithParam<CmpCase>
{
};

TEST_P(CmpSemantics, Evaluates)
{
    const CmpCase &tc = GetParam();
    EXPECT_EQ(evalCmp(tc.cmp, tc.type, tc.a, tc.b), tc.expect) << tc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CmpSemantics,
    ::testing::Values(
        CmpCase{"eq_u", CmpOp::Eq, DataType::U32, 5, 5, true},
        CmpCase{"ne_u", CmpOp::Ne, DataType::U32, 5, 5, false},
        CmpCase{"lt_u_wrap", CmpOp::Lt, DataType::U32, u(-1), 1, false},
        CmpCase{"lt_s", CmpOp::Lt, DataType::S32, u(-1), 1, true},
        CmpCase{"le_u", CmpOp::Le, DataType::U32, 4, 4, true},
        CmpCase{"gt_s", CmpOp::Gt, DataType::S32, 1, u(-1), true},
        CmpCase{"ge_u", CmpOp::Ge, DataType::U32, 3, 4, false},
        CmpCase{"lt_f", CmpOp::Lt, DataType::F32, floatBits(1.0f),
                floatBits(2.0f), true},
        CmpCase{"le_f_nan", CmpOp::Le, DataType::F32,
                floatBits(std::numeric_limits<float>::quiet_NaN()),
                floatBits(1.0f), false},
        CmpCase{"ge_f_nan", CmpOp::Ge, DataType::F32,
                floatBits(std::numeric_limits<float>::quiet_NaN()),
                floatBits(1.0f), false},
        CmpCase{"eq_f_negzero", CmpOp::Eq, DataType::F32,
                floatBits(-0.0f), floatBits(0.0f), true}),
    [](const auto &info) { return info.param.name; });

} // namespace
