/**
 * @file
 * Occupancy computation, block vs thread scheduling, barriers, and
 * dynamic-warp scheduling priority (paper Secs. IV-D and VI).
 */

#include <gtest/gtest.h>

#include "simt/assembler.hpp"
#include "simt/gpu.hpp"
#include "test_common.hpp"

using namespace uksim;

namespace {

Program
programWithResources(int regs, uint32_t sharedBytes)
{
    Program p = assemble("main:\n exit;\n");
    p.resources.registers = regs;
    p.resources.sharedBytes = sharedBytes;
    return p;
}

TEST(Occupancy, RegisterLimited)
{
    GpuConfig cfg;      // Table I defaults
    cfg.scheduling = SchedulingMode::Thread;
    // 22 registers/thread (the paper's traditional kernel):
    // 16384 / (22*32) = 23 warps -> 736 threads.
    Occupancy occ = Gpu::computeOccupancy(cfg, programWithResources(22, 0));
    EXPECT_EQ(occ.warpsPerSm, 23);
    EXPECT_EQ(occ.threadsPerSm, 736);
    EXPECT_STREQ(occ.limiter, "registers");
}

TEST(Occupancy, PaperMicroKernelCase)
{
    // 20 registers/thread -> 25 warps -> exactly the paper's 800
    // threads per SM (Sec. VI-A).
    GpuConfig cfg;
    cfg.scheduling = SchedulingMode::Thread;
    Occupancy occ = Gpu::computeOccupancy(cfg, programWithResources(20, 0));
    EXPECT_EQ(occ.threadsPerSm, 800);
}

TEST(Occupancy, PaperBlockSchedulingCase)
{
    // Block scheduling with 64-thread blocks: limited by the 8
    // blocks/SM cap -> 512 threads per SM (Sec. VI-A).
    GpuConfig cfg;
    cfg.scheduling = SchedulingMode::Block;
    cfg.blockSizeThreads = 64;
    Occupancy occ = Gpu::computeOccupancy(cfg, programWithResources(22, 0));
    EXPECT_EQ(occ.blocksPerSm, 8);
    EXPECT_EQ(occ.threadsPerSm, 512);
    EXPECT_STREQ(occ.limiter, "blocks");
}

TEST(Occupancy, ThreadSlotLimited)
{
    GpuConfig cfg;
    cfg.scheduling = SchedulingMode::Thread;
    Occupancy occ = Gpu::computeOccupancy(cfg, programWithResources(4, 0));
    EXPECT_EQ(occ.threadsPerSm, cfg.maxThreadsPerSm);
    EXPECT_STREQ(occ.limiter, "threads");
}

TEST(Occupancy, SharedMemoryLimited)
{
    GpuConfig cfg;
    cfg.scheduling = SchedulingMode::Thread;
    // 256 B shared per thread: 65536/(256*32) = 8 warps.
    Occupancy occ =
        Gpu::computeOccupancy(cfg, programWithResources(8, 256));
    EXPECT_EQ(occ.warpsPerSm, 8);
    EXPECT_STREQ(occ.limiter, "shared");
}

TEST(Occupancy, ImpossibleProgramThrows)
{
    GpuConfig cfg;
    EXPECT_THROW(
        Gpu::computeOccupancy(cfg, programWithResources(40, 65536)),
        std::runtime_error);
}

const char *kStoreTid = R"(
    main:
        mov.u32 r1, %tid;
        ld.param.u32 r2, [0];
        shl.u32 r3, r1, 2;
        add.u32 r2, r2, r3;
        st.global.u32 [r2+0], r1;
        exit;
)";

TEST(Scheduling, BlockModeCompletesGrid)
{
    GpuConfig cfg = test::smallConfig();
    cfg.scheduling = SchedulingMode::Block;
    cfg.blockSizeThreads = 64;
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(kStoreTid));
    uint32_t out = gpu.mallocGlobal(2048 * 4);
    uint32_t params[1] = {out};
    gpu.toConst(0, params, 4);
    gpu.launch(2048);
    gpu.run();
    ASSERT_TRUE(gpu.finished());
    std::vector<uint32_t> result(2048);
    gpu.fromGlobal(out, result.data(), result.size() * 4);
    for (uint32_t i = 0; i < 2048; i++)
        ASSERT_EQ(result[i], i);
}

TEST(Scheduling, BarrierSynchronizesBlock)
{
    // Warp 0 of each block writes a value; after the barrier warp 1
    // reads it. Only valid under block scheduling.
    GpuConfig cfg = test::smallConfig();
    cfg.scheduling = SchedulingMode::Block;
    cfg.blockSizeThreads = 64;
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(R"(
        main:
            mov.u32 r1, %tid;
            and.u32 r2, r1, 63;     // tid within block
            mov.u32 r3, %slot;
            // warp 0 lanes write shared[slot^32... ]: lane i writes for
            // its partner slot in the other warp of the block.
            setp.ge.u32 p0, r2, 32;
            @p0 bra after_write;
            xor.u32 r4, r3, 32;     // partner slot
            shl.u32 r4, r4, 2;
            mul.u32 r5, r1, 3;
            st.shared.u32 [r4+0], r5;
        after_write:
            bar;
            setp.lt.u32 p0, r2, 32;
            @p0 bra done;
            // warp 1 reads its own slot (written by its partner).
            shl.u32 r4, r3, 2;
            ld.shared.u32 r6, [r4+0];
            ld.param.u32 r7, [0];
            shl.u32 r8, r1, 2;
            add.u32 r7, r7, r8;
            st.global.u32 [r7+0], r6;
        done:
            exit;
    )"));
    const uint32_t threads = 512;
    uint32_t out = gpu.mallocGlobal(threads * 4);
    uint32_t params[1] = {out};
    gpu.toConst(0, params, 4);
    gpu.launch(threads);
    gpu.run();
    ASSERT_TRUE(gpu.finished());
    std::vector<uint32_t> result(threads);
    gpu.fromGlobal(out, result.data(), result.size() * 4);
    for (uint32_t i = 0; i < threads; i++) {
        if (i % 64 < 32)
            continue;   // writers store nothing
        EXPECT_EQ(result[i], (i - 32) * 3) << "tid " << i;
    }
}

TEST(Scheduling, ThreadModePacksMoreWarpsThanBlockMode)
{
    // With a register footprint that allows 23 warps, block mode (8x2)
    // only reaches 16.
    GpuConfig cfg;
    cfg.scheduling = SchedulingMode::Thread;
    Occupancy warpOcc =
        Gpu::computeOccupancy(cfg, programWithResources(22, 0));
    cfg.scheduling = SchedulingMode::Block;
    Occupancy blockOcc =
        Gpu::computeOccupancy(cfg, programWithResources(22, 0));
    EXPECT_GT(warpOcc.warpsPerSm, blockOcc.warpsPerSm);
}

TEST(Scheduling, RoundRobinInterleavesWarps)
{
    // Two warps of long ALU chains on one SM: total cycles must be
    // close to the sum of both (one issue per cycle), proving both
    // warps share the issue slot rather than one running alone.
    GpuConfig cfg = test::smallConfig();
    cfg.numSms = 1;
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(R"(
        main:
            mov.u32 r1, 0;
        loop:
            add.u32 r1, r1, 1;
            setp.lt.u32 p0, r1, 100;
            @p0 bra loop;
            exit;
    )"));
    gpu.launch(64);
    const SimStats &stats = gpu.run();
    // ~300 instructions per warp, 2 warps, 1 issue/cycle.
    EXPECT_GE(stats.cycles, 2 * 300u);
    EXPECT_LT(stats.cycles, 2 * 300u + 200u);
}

TEST(Scheduling, DynamicWarpsHavePriorityOverGridWork)
{
    // A spawning program with a grid far exceeding capacity on 1 SM:
    // if dynamic warps did not get priority, state slots could never
    // recycle and the run would deadlock (also covered by
    // SpawnExec.GridFarLargerThanStateSlots; here we additionally
    // check partial flushes stay rare while grid work remains).
    GpuConfig cfg = test::smallConfig();
    cfg.numSms = 1;
    Gpu gpu(cfg);
    gpu.loadProgram(assemble(R"(
        .entry gen
        .microkernel fin
        .spawn_state 16
        gen:
            mov.u32 r5, %spawnaddr;
            mov.u32 r1, %tid;
            st.spawn.u32 [r5+0], r1;
            spawn fin, r5;
            exit;
        fin:
            mov.u32 r2, %spawnaddr;
            ld.spawn.u32 r1, [r2+0];
            ld.spawn.u32 r3, [r1+0];
            ld.param.u32 r6, [0];
            shl.u32 r7, r3, 2;
            add.u32 r6, r6, r7;
            st.global.u32 [r6+0], r3;
            exit;
    )"));
    const uint32_t threads = 4096;
    uint32_t out = gpu.mallocGlobal(threads * 4);
    uint32_t params[1] = {out};
    gpu.toConst(0, params, 4);
    gpu.launch(threads);
    const SimStats &stats = gpu.run();
    ASSERT_TRUE(gpu.finished());
    EXPECT_EQ(stats.itemsCompleted, threads);
    std::vector<uint32_t> result(threads);
    gpu.fromGlobal(out, result.data(), result.size() * 4);
    for (uint32_t i = 0; i < threads; i++)
        ASSERT_EQ(result[i], i);
    // Flushes only happen in the drain tail, not throughout.
    EXPECT_LT(stats.partialWarpFlushes, 32u);
}

} // namespace
