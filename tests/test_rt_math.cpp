/**
 * @file
 * Ray-tracing math: vectors, AABBs, Wald triangle intersection.
 */

#include <gtest/gtest.h>

#include <random>

#include "rt/aabb.hpp"
#include "rt/camera.hpp"
#include "rt/triangle.hpp"

using namespace uksim::rt;

namespace {

TEST(Vec3, BasicOps)
{
    Vec3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
    Vec3 c = cross(Vec3{1, 0, 0}, Vec3{0, 1, 0});
    EXPECT_FLOAT_EQ(c.z, 1.0f);
    EXPECT_FLOAT_EQ(length(Vec3{3, 4, 0}), 5.0f);
    Vec3 n = normalize(Vec3{0, 0, 8});
    EXPECT_FLOAT_EQ(n.z, 1.0f);
    EXPECT_FLOAT_EQ((a + b).x, 5.0f);
    EXPECT_FLOAT_EQ((b - a).y, 3.0f);
    EXPECT_FLOAT_EQ((a * 2.0f).z, 6.0f);
    EXPECT_FLOAT_EQ(a[0], 1.0f);
    EXPECT_FLOAT_EQ(a[2], 3.0f);
}

TEST(Aabb, GrowAndArea)
{
    Aabb b;
    EXPECT_FALSE(b.valid());
    b.grow({0, 0, 0});
    b.grow({2, 3, 4});
    EXPECT_TRUE(b.valid());
    EXPECT_FLOAT_EQ(b.surfaceArea(), 2 * (2 * 3 + 3 * 4 + 4 * 2));
    EXPECT_TRUE(b.contains({1, 1, 1}));
    EXPECT_FALSE(b.contains({3, 1, 1}));
}

TEST(Aabb, SlabIntersection)
{
    Aabb b;
    b.grow({-1, -1, -1});
    b.grow({1, 1, 1});

    Ray hit;
    hit.org = {-5, 0, 0};
    hit.dir = {1, 0, 0};
    float t0 = 0, t1 = 1e30f;
    ASSERT_TRUE(b.intersect(hit, t0, t1));
    EXPECT_FLOAT_EQ(t0, 4.0f);
    EXPECT_FLOAT_EQ(t1, 6.0f);

    Ray miss = hit;
    miss.org = {-5, 3, 0};
    t0 = 0;
    t1 = 1e30f;
    EXPECT_FALSE(b.intersect(miss, t0, t1));

    // Ray starting inside.
    Ray inside;
    inside.org = {0, 0, 0};
    inside.dir = {0, 1, 0};
    t0 = 0;
    t1 = 1e30f;
    ASSERT_TRUE(b.intersect(inside, t0, t1));
    EXPECT_FLOAT_EQ(t0, 0.0f);
    EXPECT_FLOAT_EQ(t1, 1.0f);
}

TEST(WaldTriangle, DirectHit)
{
    Triangle tri{{0, 0, 5}, {2, 0, 5}, {0, 2, 5}};
    WaldTriangle w;
    ASSERT_TRUE(w.precompute(tri));

    Ray r;
    r.org = {0.5f, 0.5f, 0};
    r.dir = {0, 0, 1};
    float tmax = 1e30f;
    ASSERT_TRUE(w.intersect(r, tmax));
    EXPECT_FLOAT_EQ(tmax, 5.0f);
}

TEST(WaldTriangle, MissOutsideBarycentrics)
{
    Triangle tri{{0, 0, 5}, {2, 0, 5}, {0, 2, 5}};
    WaldTriangle w;
    ASSERT_TRUE(w.precompute(tri));
    Ray r;
    r.dir = {0, 0, 1};
    float tmax;
    r.org = {1.5f, 1.5f, 0};   // beyond the hypotenuse
    tmax = 1e30f;
    EXPECT_FALSE(w.intersect(r, tmax));
    r.org = {-0.1f, 0.5f, 0};  // beta < 0 side
    tmax = 1e30f;
    EXPECT_FALSE(w.intersect(r, tmax));
    r.org = {0.5f, -0.1f, 0};  // gamma < 0 side
    tmax = 1e30f;
    EXPECT_FALSE(w.intersect(r, tmax));
}

TEST(WaldTriangle, RespectsTmaxAndTmin)
{
    Triangle tri{{0, 0, 5}, {2, 0, 5}, {0, 2, 5}};
    WaldTriangle w;
    ASSERT_TRUE(w.precompute(tri));
    Ray r;
    r.org = {0.5f, 0.5f, 0};
    r.dir = {0, 0, 1};
    float tmax = 4.0f;          // hit at 5 is beyond tmax
    EXPECT_FALSE(w.intersect(r, tmax));

    r.tmin = 6.0f;              // hit at 5 is before tmin
    tmax = 1e30f;
    EXPECT_FALSE(w.intersect(r, tmax));

    Ray behind;                 // triangle behind the origin
    behind.org = {0.5f, 0.5f, 10};
    behind.dir = {0, 0, 1};
    tmax = 1e30f;
    EXPECT_FALSE(w.intersect(behind, tmax));
}

TEST(WaldTriangle, DegenerateRejectedAtPrecompute)
{
    Triangle line{{0, 0, 0}, {1, 1, 1}, {2, 2, 2}};
    WaldTriangle w;
    EXPECT_FALSE(w.precompute(line));
    Triangle point{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}};
    EXPECT_FALSE(w.precompute(point));
}

/** Oracle: Moller-Trumbore, implemented independently. */
bool
mollerTrumbore(const Triangle &tri, const Ray &ray, float &tOut)
{
    const Vec3 e1 = tri.b - tri.a;
    const Vec3 e2 = tri.c - tri.a;
    const Vec3 p = cross(ray.dir, e2);
    const float det = dot(e1, p);
    if (std::fabs(det) < 1e-12f)
        return false;
    const float inv = 1.0f / det;
    const Vec3 s = ray.org - tri.a;
    const float u = dot(s, p) * inv;
    if (u < 0.0f || u > 1.0f)
        return false;
    const Vec3 q = cross(s, e1);
    const float v = dot(ray.dir, q) * inv;
    if (v < 0.0f || u + v > 1.0f)
        return false;
    const float t = dot(e2, q) * inv;
    if (t < ray.tmin)
        return false;
    tOut = t;
    return true;
}

TEST(WaldTriangle, PropertyMatchesMollerTrumbore)
{
    std::mt19937 rng(1234);
    std::uniform_real_distribution<float> d(-5.0f, 5.0f);
    int hits = 0;
    int disagreements = 0;
    for (int i = 0; i < 3000; i++) {
        Triangle tri{{d(rng), d(rng), d(rng)},
                     {d(rng), d(rng), d(rng)},
                     {d(rng), d(rng), d(rng)}};
        WaldTriangle w;
        if (!w.precompute(tri))
            continue;
        Ray r;
        r.org = {d(rng), d(rng), d(rng)};
        r.dir = {d(rng), d(rng), d(rng)};
        if (length(r.dir) < 1e-3f)
            continue;

        float tw = 1e30f;
        bool hw = w.intersect(r, tw);
        float tm = 0;
        bool hm = mollerTrumbore(tri, r, tm);
        if (hw != hm) {
            // Allow rare boundary disagreements from differing
            // arithmetic, but they must be vanishingly few.
            disagreements++;
            continue;
        }
        if (hw) {
            hits++;
            EXPECT_NEAR(tw, tm, 1e-3f * std::max(1.0f, std::fabs(tm)));
        }
    }
    EXPECT_GT(hits, 50);            // the sweep actually exercised hits
    EXPECT_LE(disagreements, 3);
}

TEST(Camera, RaysSpanTheImagePlane)
{
    Camera cam({0, 0, -10}, {0, 0, 0}, {0, 1, 0}, 60.0f, 64, 64);
    Ray center = cam.ray(32, 32);
    Vec3 cd = normalize(center.dir);
    EXPECT_NEAR(cd.z, 1.0f, 0.05f);

    Ray corner00 = cam.ray(0, 0);
    Ray corner11 = cam.ray(63, 63);
    Vec3 a = normalize(corner00.dir);
    Vec3 b = normalize(corner11.dir);
    // Opposite corners mirror around the center direction.
    EXPECT_NEAR(a.x, -b.x, 0.05f);
    EXPECT_NEAR(a.y, -b.y, 0.05f);
    EXPECT_GT(dot(a, b), 0.0f);     // both still point forward
}

TEST(Camera, MatchesDeviceArithmetic)
{
    // The device kernel computes dir = fy*dv + (fx*du + ll) with mads;
    // Camera::ray must produce bit-identical values.
    Camera cam({1, 2, 3}, {0, 0, 0}, {0, 1, 0}, 45.0f, 32, 32);
    for (int p = 0; p < 32 * 32; p += 37) {
        int x = p % 32, y = p / 32;
        float fx = x + 0.5f, fy = y + 0.5f;
        Ray r = cam.ray(x, y);
        EXPECT_EQ(r.dir.x, fy * cam.dv.x + (fx * cam.du.x +
                                            cam.lowerLeft.x));
        EXPECT_EQ(r.dir.y, fy * cam.dv.y + (fx * cam.du.y +
                                            cam.lowerLeft.y));
        EXPECT_EQ(r.dir.z, fy * cam.dv.z + (fx * cam.du.z +
                                            cam.lowerLeft.z));
    }
}

} // namespace
