/**
 * @file
 * SHA-256 implementation tests (src/serve/sha256.hpp).
 *
 * The digests below are FIPS 180-4 test vectors, so these tests pin
 * the implementation to the standard — including byte order: the
 * canonical job hash must be identical on little- and big-endian
 * hosts, which only holds if the compression function loads message
 * words explicitly big-endian.
 */

#include <gtest/gtest.h>

#include <string>

#include "serve/sha256.hpp"

using namespace uksim::serve;

TEST(Sha256, EmptyInputMatchesFipsVector)
{
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855");
}

TEST(Sha256, AbcMatchesFipsVector)
{
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
}

TEST(Sha256, TwoBlockMessageMatchesFipsVector)
{
    EXPECT_EQ(sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmno"
                        "mnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
              "19db06c1");
}

TEST(Sha256, MillionAsMatchesFipsVector)
{
    const std::string chunk(1000, 'a');
    Sha256 h;
    for (int i = 0; i < 1000; i++)
        h.update(chunk.data(), chunk.size());
    EXPECT_EQ(h.hexDigest(),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39cc"
              "c7112cd0");
}

TEST(Sha256, IncrementalUpdatesMatchOneShot)
{
    const std::string msg =
        "the canonical job hash is computed over canonical bytes";
    Sha256 h;
    for (char c : msg)
        h.update(&c, 1);
    EXPECT_EQ(h.hexDigest(), sha256Hex(msg));
}

TEST(Sha256, ResetReusesTheObject)
{
    Sha256 h;
    h.update("garbage", 7);
    (void)h.digest();
    h.reset();
    h.update("abc", 3);
    EXPECT_EQ(h.hexDigest(),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
}
