/**
 * @file
 * Statistics: occupancy binning, time windows, derived metrics.
 */

#include <gtest/gtest.h>

#include "simt/stats.hpp"

using namespace uksim;

namespace {

TEST(Stats, OccupancyBinning)
{
    SimStats s;
    s.recordIssue(0, 1, 1000);      // bin 0 (W1:4)
    s.recordIssue(0, 4, 1000);      // bin 0
    s.recordIssue(0, 5, 1000);      // bin 1 (W5:8)
    s.recordIssue(0, 17, 1000);     // bin 4 (W17:20)
    s.recordIssue(0, 32, 1000);     // bin 7 (W29:32)
    ASSERT_EQ(s.windows.size(), 1u);
    EXPECT_EQ(s.windows[0].bins[0], 2u);
    EXPECT_EQ(s.windows[0].bins[1], 1u);
    EXPECT_EQ(s.windows[0].bins[4], 1u);
    EXPECT_EQ(s.windows[0].bins[7], 1u);
    EXPECT_EQ(s.warpIssues, 5u);
    EXPECT_EQ(s.laneInstructions, 1u + 4 + 5 + 17 + 32);
}

TEST(Stats, WindowsSplitByCycle)
{
    SimStats s;
    s.recordIssue(0, 32, 1000);
    s.recordIssue(999, 32, 1000);
    s.recordIssue(1000, 16, 1000);
    s.recordIdle(2500, 1000);
    ASSERT_EQ(s.windows.size(), 3u);
    EXPECT_EQ(s.windows[0].bins[7], 2u);
    EXPECT_EQ(s.windows[1].bins[3], 1u);
    EXPECT_EQ(s.windows[2].idleIssueSlots, 1u);
    EXPECT_EQ(s.windows[1].startCycle, 1000u);
}

TEST(Stats, DerivedMetrics)
{
    SimStats s;
    s.cycles = 1000;
    s.laneInstructions = 32000;
    s.warpIssues = 2000;
    EXPECT_DOUBLE_EQ(s.ipc(), 32.0);
    EXPECT_DOUBLE_EQ(s.simtEfficiency(32), 0.5);

    s.itemsCompleted = 500;
    // 500 items over 1000 cycles at 1 GHz = 500M items/s.
    EXPECT_DOUBLE_EQ(s.itemsPerSecond(1.0), 5e8);
}

TEST(Stats, ZeroCyclesSafe)
{
    SimStats s;
    EXPECT_DOUBLE_EQ(s.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(s.itemsPerSecond(1.3), 0.0);
    EXPECT_DOUBLE_EQ(s.simtEfficiency(32), 0.0);
}

TEST(Stats, CsvSeries)
{
    SimStats s;
    s.recordIssue(0, 32, 100);
    s.recordIssue(150, 3, 100);
    s.recordIdle(150, 100);
    std::string csv = s.occupancyCsv();
    EXPECT_NE(csv.find("W1:4"), std::string::npos);
    EXPECT_NE(csv.find("W29:32"), std::string::npos);
    // Two windows -> header + 2 rows.
    int lines = 0;
    for (char c : csv)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 3);
}

TEST(Stats, ZeroLaneIssueNotBinned)
{
    SimStats s;
    s.recordIssue(0, 0, 100);
    EXPECT_EQ(s.warpIssues, 1u);
    EXPECT_TRUE(s.windows.empty());
}

} // namespace
