/**
 * @file
 * Statistics: occupancy binning, time windows, derived metrics,
 * cross-run aggregation.
 */

#include <gtest/gtest.h>

#include "simt/stats.hpp"

using namespace uksim;

namespace {

TEST(Stats, OccupancyBinning)
{
    SimStats s;
    s.setWindowCycles(1000);
    s.recordIssue(0, 1);        // bin 0 (W1:4)
    s.recordIssue(0, 4);        // bin 0
    s.recordIssue(0, 5);        // bin 1 (W5:8)
    s.recordIssue(0, 17);       // bin 4 (W17:20)
    s.recordIssue(0, 32);       // bin 7 (W29:32)
    ASSERT_EQ(s.windows.size(), 1u);
    EXPECT_EQ(s.windows[0].bins[0], 2u);
    EXPECT_EQ(s.windows[0].bins[1], 1u);
    EXPECT_EQ(s.windows[0].bins[4], 1u);
    EXPECT_EQ(s.windows[0].bins[7], 1u);
    EXPECT_EQ(s.warpIssues, 5u);
    EXPECT_EQ(s.laneInstructions, 1u + 4 + 5 + 17 + 32);
}

TEST(Stats, WindowsSplitByCycle)
{
    SimStats s;
    s.setWindowCycles(1000);
    s.recordIssue(0, 32);
    s.recordIssue(999, 32);
    s.recordIssue(1000, 16);
    s.recordIdle(2500);
    ASSERT_EQ(s.windows.size(), 3u);
    EXPECT_EQ(s.windows[0].bins[7], 2u);
    EXPECT_EQ(s.windows[1].bins[3], 1u);
    EXPECT_EQ(s.windows[2].idleIssueSlots, 1u);
    EXPECT_EQ(s.windows[1].startCycle, 1000u);
}

TEST(Stats, WindowCyclesFixedOnceSeriesExists)
{
    SimStats s;
    s.setWindowCycles(500);
    s.setWindowCycles(250);     // fine: no windows yet
    s.recordIssue(0, 8);
    s.setWindowCycles(250);     // same value: still fine
    EXPECT_EQ(s.windowCycles(), 250u);
    ASSERT_EQ(s.windows.size(), 1u);
}

TEST(Stats, DerivedMetrics)
{
    SimStats s;
    s.cycles = 1000;
    s.laneInstructions = 32000;
    s.warpIssues = 2000;
    EXPECT_DOUBLE_EQ(s.ipc(), 32.0);
    EXPECT_DOUBLE_EQ(s.simtEfficiency(32), 0.5);

    s.itemsCompleted = 500;
    // 500 items over 1000 cycles at 1 GHz = 500M items/s.
    EXPECT_DOUBLE_EQ(s.itemsPerSecond(1.0), 5e8);
}

TEST(Stats, ZeroCyclesSafe)
{
    SimStats s;
    EXPECT_DOUBLE_EQ(s.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(s.itemsPerSecond(1.3), 0.0);
    EXPECT_DOUBLE_EQ(s.simtEfficiency(32), 0.0);
}

TEST(Stats, CsvSeries)
{
    SimStats s;
    s.setWindowCycles(100);
    s.recordIssue(0, 32);
    s.recordIssue(150, 3);
    s.recordIdle(150);
    std::string csv = s.occupancyCsv();
    EXPECT_NE(csv.find("W1:4"), std::string::npos);
    EXPECT_NE(csv.find("W29:32"), std::string::npos);
    // Two windows -> header + 2 rows.
    int lines = 0;
    for (char c : csv)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 3);
}

TEST(Stats, ZeroLaneIssueNotBinned)
{
    SimStats s;
    s.setWindowCycles(100);
    s.recordIssue(0, 0);
    EXPECT_EQ(s.warpIssues, 1u);
    EXPECT_TRUE(s.windows.empty());
}

TEST(Stats, AccumulateScalarsAndStalls)
{
    SimStats a;
    a.cycles = 100;
    a.warpIssues = 40;
    a.laneInstructions = 900;
    a.dramReadBytes = 64;
    a.stall.record(trace::StallReason::Issued);
    a.stall.record(trace::StallReason::Scoreboard);

    SimStats b;
    b.cycles = 50;
    b.warpIssues = 10;
    b.laneInstructions = 100;
    b.dramWriteBytes = 32;
    b.stall.record(trace::StallReason::Issued);

    a += b;
    EXPECT_EQ(a.cycles, 150u);
    EXPECT_EQ(a.warpIssues, 50u);
    EXPECT_EQ(a.laneInstructions, 1000u);
    EXPECT_EQ(a.dramReadBytes, 64u);
    EXPECT_EQ(a.dramWriteBytes, 32u);
    EXPECT_EQ(a.stall.count(trace::StallReason::Issued), 2u);
    EXPECT_EQ(a.stall.count(trace::StallReason::Scoreboard), 1u);
    EXPECT_EQ(a.stall.total(), 3u);
}

TEST(Stats, AccumulateMergesWindowsIndexAligned)
{
    SimStats a;
    a.setWindowCycles(100);
    a.recordIssue(0, 32);
    a.recordIdle(50);

    SimStats b;
    b.setWindowCycles(100);
    b.recordIssue(0, 32);
    b.recordIssue(150, 8);      // b has one more window than a

    a += b;
    ASSERT_EQ(a.windows.size(), 2u);
    EXPECT_EQ(a.windows[0].bins[7], 2u);
    EXPECT_EQ(a.windows[0].idleIssueSlots, 1u);
    EXPECT_EQ(a.windows[1].bins[1], 1u);
    EXPECT_EQ(a.windows[1].startCycle, 100u);
}

TEST(Stats, AccumulateIntoEmptyAdoptsSeries)
{
    SimStats b;
    b.setWindowCycles(100);
    b.recordIssue(0, 16);
    b.recordIssue(120, 16);

    SimStats a;
    a.setWindowCycles(100);
    a += b;
    ASSERT_EQ(a.windows.size(), 2u);
    EXPECT_EQ(a.windows[0].bins[3], 1u);
    EXPECT_EQ(a.windows[1].bins[3], 1u);
}

TEST(Stats, EqualityIsFieldwise)
{
    SimStats a;
    a.setWindowCycles(100);
    a.recordIssue(0, 32);
    SimStats b = a;
    EXPECT_TRUE(a == b);
    b.stall.record(trace::StallReason::Barrier);
    EXPECT_FALSE(a == b);
}

} // namespace
