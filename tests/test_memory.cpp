/**
 * @file
 * Memory subsystem tests: stores, coalescing, bank conflicts, DRAM
 * timing.
 */

#include <gtest/gtest.h>

#include "mem/bank.hpp"
#include "mem/coalescer.hpp"
#include "mem/dram.hpp"
#include "mem/store.hpp"
#include "simt/isa.hpp"
#include "test_common.hpp"

using namespace uksim;

namespace {

// ---- Store -----------------------------------------------------------------

TEST(Store, WordRoundTrip)
{
    Store s("test", 64);
    s.write32(0, 0xdeadbeef);
    s.write32(60, 42);
    EXPECT_EQ(s.read32(0), 0xdeadbeefu);
    EXPECT_EQ(s.read32(60), 42u);
}

TEST(Store, FloatRoundTrip)
{
    Store s("test", 16);
    s.writeF32(4, 3.25f);
    EXPECT_FLOAT_EQ(s.readF32(4), 3.25f);
    EXPECT_EQ(s.read32(4), floatBits(3.25f));
}

TEST(Store, BlockCopy)
{
    Store s("test", 32);
    uint32_t src[4] = {1, 2, 3, 4};
    s.writeBlock(8, src, 16);
    uint32_t dst[4] = {};
    s.readBlock(8, dst, 16);
    EXPECT_EQ(dst[2], 3u);
}

TEST(Store, OutOfBoundsFaults)
{
    Store s("oops", 16);
    EXPECT_THROW(s.read32(13), MemoryFault);
    EXPECT_THROW(s.write32(16, 0), MemoryFault);
    EXPECT_NO_THROW(s.read32(12));
    try {
        s.read32(100);
        FAIL();
    } catch (const MemoryFault &e) {
        EXPECT_NE(std::string(e.what()).find("oops"), std::string::npos);
    }
}

// ---- Coalescer ----------------------------------------------------------------

std::vector<uint64_t>
addrs(std::initializer_list<uint64_t> l)
{
    return {l};
}

TEST(Coalescer, FullyCoalescedWarp)
{
    // 16 lanes x 4B contiguous => one 64B segment.
    std::vector<uint64_t> a(16);
    for (int i = 0; i < 16; i++)
        a[i] = 256 + i * 4;
    auto segs = coalesce(a, 0xffff, 4, 64);
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0].addr, 256u);
    EXPECT_EQ(segs[0].bytes, 64u);
}

TEST(Coalescer, StridedAccessExplodes)
{
    // 4B accesses, 64B apart: one segment per lane.
    std::vector<uint64_t> a(8);
    for (int i = 0; i < 8; i++)
        a[i] = i * 64;
    auto segs = coalesce(a, 0xff, 4, 64);
    EXPECT_EQ(segs.size(), 8u);
}

TEST(Coalescer, InactiveLanesIgnored)
{
    auto segs = coalesce(addrs({0, 4096, 8192, 12288}), 0b0101, 4, 64);
    EXPECT_EQ(segs.size(), 2u);
}

TEST(Coalescer, StraddlingAccessTouchesTwoSegments)
{
    // 16B access starting 8 bytes before a segment boundary.
    auto segs = coalesce(addrs({56}), 0b1, 16, 64);
    ASSERT_EQ(segs.size(), 2u);
    EXPECT_EQ(segs[0].addr, 0u);
    EXPECT_EQ(segs[1].addr, 64u);
}

TEST(Coalescer, DuplicateAddressesMergeAndNoActiveLanes)
{
    auto segs = coalesce(addrs({128, 128, 132, 160}), 0b1111, 4, 64);
    EXPECT_EQ(segs.size(), 1u);
    EXPECT_TRUE(coalesce(addrs({1, 2, 3}), 0, 4, 64).empty());
}

// ---- Bank conflicts ----------------------------------------------------------------

TEST(BankModel, ConflictFreeUnitStride)
{
    std::vector<uint64_t> a(16);
    for (int i = 0; i < 16; i++)
        a[i] = i * 4;
    EXPECT_EQ(bankConflictPasses(a, 0xffff, 1, 16), 1);
}

TEST(BankModel, PowerOfTwoStrideConflicts)
{
    // Stride 16 words: every lane hits bank 0 => N passes.
    std::vector<uint64_t> a(8);
    for (int i = 0; i < 8; i++)
        a[i] = uint64_t(i) * 16 * 4;
    EXPECT_EQ(bankConflictPasses(a, 0xff, 1, 16), 8);
}

TEST(BankModel, BroadcastSameWordIsFree)
{
    std::vector<uint64_t> a(32, 128);
    EXPECT_EQ(bankConflictPasses(a, 0xffffffff, 1, 16), 1);
}

TEST(BankModel, VectorAccessCountsEachWord)
{
    // Two lanes, v4 each, lane1 starts 16 words after lane0:
    // words {0..3} and {16..19} share banks 0..3 => 2 passes.
    std::vector<uint64_t> a = {0, 64};
    EXPECT_EQ(bankConflictPasses(a, 0b11, 4, 16), 2);
}

TEST(BankModel, Stride48ByteStateRecords)
{
    // The micro-kernel state layout: 12-word records. With 16 banks a
    // full warp of v4 accesses serializes substantially (this is what
    // Fig. 9 models).
    std::vector<uint64_t> a(32);
    for (int i = 0; i < 32; i++)
        a[i] = uint64_t(i) * 48;
    int passes = bankConflictPasses(a, 0xffffffff, 4, 16);
    EXPECT_GE(passes, 4);
}

TEST(BankModel, NoActiveLanes)
{
    std::vector<uint64_t> a = {0, 4};
    EXPECT_EQ(bankConflictPasses(a, 0, 1, 16), 0);
}

// ---- DRAM timing ----------------------------------------------------------------

TEST(Dram, PartitionInterleaving)
{
    GpuConfig cfg = test::smallConfig();
    DramModel dram(cfg);
    const int seg = cfg.coalesceSegmentBytes;
    EXPECT_EQ(dram.partitionOf(0), 0);
    EXPECT_EQ(dram.partitionOf(seg), 1);
    EXPECT_EQ(dram.partitionOf(uint64_t(seg) * 7), 7);
    EXPECT_EQ(dram.partitionOf(uint64_t(seg) * 8), 0);
}

TEST(Dram, SingleAccessLatency)
{
    GpuConfig cfg = test::smallConfig();
    DramModel dram(cfg);
    uint64_t done = dram.access({0, 64}, false, 100);
    // interconnect + service (64/8) + fixed latency
    EXPECT_EQ(done, 100u + cfg.interconnectLatencyCycles + 8 +
                        cfg.dramLatencyCycles);
}

TEST(Dram, SamePartitionSerializes)
{
    GpuConfig cfg = test::smallConfig();
    DramModel dram(cfg);
    uint64_t d1 = dram.access({0, 64}, false, 0);
    uint64_t d2 = dram.access({64 * 8, 64}, false, 0);  // same partition
    EXPECT_EQ(d2, d1 + 8);
    uint64_t d3 = dram.access({64, 64}, false, 0);      // other partition
    EXPECT_EQ(d3, d1);
}

TEST(Dram, BandwidthAccounting)
{
    GpuConfig cfg = test::smallConfig();
    DramModel dram(cfg);
    dram.access({0, 64}, false, 0);
    dram.access({64, 64}, true, 0);
    dram.access({128, 64}, true, 0);
    EXPECT_EQ(dram.totalReadBytes(), 64u);
    EXPECT_EQ(dram.totalWriteBytes(), 128u);
    EXPECT_EQ(dram.totalTransactions(), 3u);
}

TEST(Dram, IdealMemoryMode)
{
    GpuConfig cfg = test::smallConfig();
    cfg.idealMemory = true;
    DramModel dram(cfg);
    EXPECT_EQ(dram.access({0, 64}, false, 500), 501u);
    // Traffic still counted.
    EXPECT_EQ(dram.totalReadBytes(), 64u);
}

TEST(Dram, AccessAllReturnsLastCompletion)
{
    GpuConfig cfg = test::smallConfig();
    DramModel dram(cfg);
    std::vector<Segment> segs = {{0, 64}, {64 * 8, 64}, {64, 64}};
    uint64_t done = dram.accessAll(segs, false, 0);
    EXPECT_EQ(done, uint64_t(cfg.interconnectLatencyCycles) + 16 +
                        cfg.dramLatencyCycles);
}

} // namespace
