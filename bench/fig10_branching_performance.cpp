/**
 * @file
 * Figure 10: branching performance on the conference benchmark,
 * normalized to the MIMD theoretical ideal. "Theoretical" bars are
 * simulated with an ideal memory system (every access single-cycle).
 * Paper: PDOM ~25% of MIMD (unchanged by ideal memory — it is
 * branch-bound); dynamic u-kernels reach ~45%, ~60% with ideal memory.
 */

#include "bench_common.hpp"

#include "simt/mimd.hpp"

using namespace uksim;
using namespace uksim::bench;
using namespace uksim::harness;

namespace {

std::map<std::string, double> g_mrays;
MimdResult g_mimd;

void
runPoint(benchmark::State &state, KernelKind kernel, bool ideal,
         const char *label)
{
    ExperimentConfig cfg = baseExperiment();
    cfg.sceneName = "conference";
    cfg.kernel = kernel;
    cfg.idealMemory = ideal;
    ExperimentResult r = runCounted(state, cfg);
    g_mrays[label] = r.mraysPerSec;
}

void
BM_Fig10_MimdTheoretical(benchmark::State &state)
{
    ExperimentConfig cfg = baseExperiment();
    for (auto _ : state) {
        g_mimd = runMimdBound(
            sceneCache().get("conference", cfg.sceneParams),
            cfg.baseConfig, cfg.sceneParams);
    }
    state.counters["Mrays_per_s"] =
        g_mimd.itemsPerSecond(cfg.baseConfig.clockGhz) / 1e6;
}

} // namespace

BENCHMARK(BM_Fig10_MimdTheoretical)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int
main(int argc, char **argv)
{
    benchmark::RegisterBenchmark("Fig10/PDOM",
                                 [](benchmark::State &st) {
                                     runPoint(st, KernelKind::Traditional,
                                              false, "PDOM");
                                 })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        "Fig10/PDOM_IdealMemory",
        [](benchmark::State &st) {
            runPoint(st, KernelKind::Traditional, true, "PDOM ideal");
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        "Fig10/uKernel",
        [](benchmark::State &st) {
            runPoint(st, KernelKind::MicroKernel, false, "uK");
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        "Fig10/uKernel_IdealMemory",
        [](benchmark::State &st) {
            runPoint(st, KernelKind::MicroKernel, true, "uK ideal");
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);

    initBench(argc, argv);
    printHeader("Figure 10: branching performance vs MIMD theoretical "
                "(conference)");
    benchmark::RunSpecifiedBenchmarks();

    ExperimentConfig cfg = baseExperiment();
    double mimd = g_mimd.itemsPerSecond(cfg.baseConfig.clockGhz) / 1e6;

    harness::TextTable t;
    t.header({"configuration", "Mrays/s", "% of MIMD theoretical",
              "paper"});
    auto row = [&](const char *label, const char *paperPct) {
        t.row({label, harness::fmt(g_mrays[label], 1),
               harness::fmt(100.0 * g_mrays[label] / mimd, 1),
               paperPct});
    };
    row("PDOM", "~25%");
    row("PDOM ideal", "~25% (no gain: branch-bound)");
    row("uK", "~45%");
    row("uK ideal", "~60%");
    t.row({"MIMD theoretical", harness::fmt(mimd, 1), "100.0", "100%"});
    std::printf("%s", t.str().c_str());

    std::printf("\nPDOM ideal-memory gain: %.2fx (paper: ~1.0x — PDOM is "
                "limited by branching hardware, not memory)\n",
                g_mrays["PDOM ideal"] / g_mrays["PDOM"]);
    std::printf("u-kernel ideal-memory gain: %.2fx\n",
                g_mrays["uK ideal"] / g_mrays["uK"]);
    writeCsvIfRequested();
    return 0;
}
