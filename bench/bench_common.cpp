/**
 * @file
 * Shared bench output helpers.
 */

#include "bench_common.hpp"

#include <cstring>
#include <fstream>

namespace uksim::bench {

namespace {
std::string g_csvPath;
} // namespace

void
initBench(int &argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
            g_csvPath = argv[++i];
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
    benchmark::Initialize(&argc, argv);
}

trace::Registry &
benchRegistry()
{
    static trace::Registry reg;
    return reg;
}

std::string
registryKey(const std::string &label)
{
    std::string key;
    for (char c : label) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        key += ok ? c : '.';
    }
    // Collapse runs so "a//b" cannot produce an empty segment.
    std::string clean;
    for (char c : key) {
        if (c == '.' && (clean.empty() || clean.back() == '.'))
            continue;
        clean += c;
    }
    while (!clean.empty() && clean.back() == '.')
        clean.pop_back();
    return clean.empty() ? "unnamed" : clean;
}

void
writeCsvIfRequested()
{
    if (g_csvPath.empty())
        return;
    std::ofstream out(g_csvPath, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "bench: cannot write %s\n",
                     g_csvPath.c_str());
        return;
    }
    out << benchRegistry().csv();
    std::printf("wrote %zu counters to %s\n", benchRegistry().size(),
                g_csvPath.c_str());
}

void
printDivergenceSeries(const SimStats &stats, const char *label)
{
    std::printf("--- divergence breakdown over time: %s ---\n", label);
    std::printf("window      issues  idle%%   ");
    for (int b = 0; b < kOccupancyBins; b++)
        std::printf("W%d:%-4d", b * 4 + 1, b * 4 + 4);
    std::printf("\n");

    for (const auto &w : stats.windows) {
        uint64_t total = 0;
        for (uint64_t v : w.bins)
            total += v;
        if (total == 0)
            continue;
        double idleShare =
            double(w.idleIssueSlots) /
            double(w.idleIssueSlots + total);
        std::printf("%8llu  %8llu  %5.1f  ",
                    static_cast<unsigned long long>(w.startCycle),
                    static_cast<unsigned long long>(total),
                    idleShare * 100.0);
        for (int b = 0; b < kOccupancyBins; b++) {
            std::printf("%5.1f%%  ",
                        100.0 * double(w.bins[b]) / double(total));
        }
        std::printf("\n");
    }

    // CSV appendix for plotting (the exact series AerialVision shows).
    std::printf("--- CSV ---\n%s\n", stats.occupancyCsv().c_str());
}

} // namespace uksim::bench
