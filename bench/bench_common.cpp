/**
 * @file
 * Shared bench output helpers.
 */

#include "bench_common.hpp"

namespace uksim::bench {

void
printDivergenceSeries(const SimStats &stats, const char *label)
{
    std::printf("--- divergence breakdown over time: %s ---\n", label);
    std::printf("window      issues  idle%%   ");
    for (int b = 0; b < kOccupancyBins; b++)
        std::printf("W%d:%-4d", b * 4 + 1, b * 4 + 4);
    std::printf("\n");

    for (const auto &w : stats.windows) {
        uint64_t total = 0;
        for (uint64_t v : w.bins)
            total += v;
        if (total == 0)
            continue;
        double idleShare =
            double(w.idleIssueSlots) /
            double(w.idleIssueSlots + total);
        std::printf("%8llu  %8llu  %5.1f  ",
                    static_cast<unsigned long long>(w.startCycle),
                    static_cast<unsigned long long>(total),
                    idleShare * 100.0);
        for (int b = 0; b < kOccupancyBins; b++) {
            std::printf("%5.1f%%  ",
                        100.0 * double(w.bins[b]) / double(total));
        }
        std::printf("\n");
    }

    // CSV appendix for plotting (the exact series AerialVision shows).
    std::printf("--- CSV ---\n%s\n", stats.occupancyCsv().c_str());
}

} // namespace uksim::bench
