/**
 * @file
 * Figure 9: divergence breakdown with dynamic micro-kernels when spawn
 * memory bank conflicts are modeled (paper: IPC drops 615 -> 429 but
 * stays well above PDOM's 326).
 */

#include "bench_common.hpp"

using namespace uksim;
using namespace uksim::bench;
using namespace uksim::harness;

namespace {

ExperimentResult g_clean;
ExperimentResult g_banked;
ExperimentResult g_pdom;

void
BM_Fig9_Pdom(benchmark::State &state)
{
    ExperimentConfig cfg = baseExperiment();
    cfg.sceneName = "conference";
    cfg.kernel = KernelKind::Traditional;
    g_pdom = runCounted(state, cfg);
}

void
BM_Fig9_UkNoConflicts(benchmark::State &state)
{
    ExperimentConfig cfg = baseExperiment();
    cfg.sceneName = "conference";
    cfg.kernel = KernelKind::MicroKernel;
    cfg.spawnBankConflicts = false;
    g_clean = runCounted(state, cfg);
}

void
BM_Fig9_UkWithConflicts(benchmark::State &state)
{
    ExperimentConfig cfg = baseExperiment();
    cfg.sceneName = "conference";
    cfg.kernel = KernelKind::MicroKernel;
    cfg.spawnBankConflicts = true;      // the Fig. 9 difference
    g_banked = runCounted(state, cfg);
}

} // namespace

BENCHMARK(BM_Fig9_Pdom)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Fig9_UkNoConflicts)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Fig9_UkWithConflicts)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    printHeader("Figure 9: u-kernel divergence breakdown with spawn "
                "memory bank conflicts (conference)");
    benchmark::RunSpecifiedBenchmarks();

    printDivergenceSeries(g_banked.stats,
                          "dynamic u-kernels (16-bank spawn memory)");

    harness::TextTable t;
    t.header({"config", "IPC", "vs PDOM", "bank-conflict stall cycles"});
    t.row({"PDOM", harness::fmt(g_pdom.ipc, 0), "1.00", "0"});
    t.row({"u-kernel, conflict-free", harness::fmt(g_clean.ipc, 0),
           harness::fmt(g_clean.ipc / g_pdom.ipc, 2), "0"});
    t.row({"u-kernel, banked",
           harness::fmt(g_banked.ipc, 0),
           harness::fmt(g_banked.ipc / g_pdom.ipc, 2),
           std::to_string(g_banked.stats.bankConflictExtraCycles)});
    std::printf("%s\n(paper: 326 / 615 (1.9x) / 429 (1.3x))\n",
                t.str().c_str());
    writeCsvIfRequested();
    return 0;
}
