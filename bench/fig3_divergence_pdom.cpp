/**
 * @file
 * Figure 3: divergence breakdown for warps using traditional SIMT
 * (PDOM) branching on the conference benchmark. Reproduces the
 * AerialVision-style warp-occupancy time series the paper plots.
 */

#include "bench_common.hpp"

using namespace uksim;
using namespace uksim::bench;
using namespace uksim::harness;

namespace {

ExperimentResult g_result;

void
BM_Fig3_PdomConference(benchmark::State &state)
{
    ExperimentConfig cfg = baseExperiment();
    cfg.sceneName = "conference";
    cfg.kernel = KernelKind::Traditional;
    cfg.scheduling = SchedulingMode::Thread;
    g_result = runCounted(state, cfg);
}

} // namespace

BENCHMARK(BM_Fig3_PdomConference)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    printHeader("Figure 3: PDOM divergence breakdown (conference)");
    benchmark::RunSpecifiedBenchmarks();

    printDivergenceSeries(g_result.stats, "PDOM (traditional branching)");
    std::printf("average IPC %.0f, SIMT efficiency %.2f "
                "(paper: IPC 326, heavy W1:4 share)\n",
                g_result.ipc, g_result.simtEfficiency);
    writeCsvIfRequested();
    return 0;
}
