/**
 * @file
 * Table II: per-thread processor resource requirements for the
 * traditional kernel and the dynamic micro-kernel program, from static
 * analysis of the assembled kernels, plus the occupancy each implies
 * (the paper's 512 vs 800 threads/SM discussion in Sec. VI-A).
 */

#include "bench_common.hpp"

#include "kernels/kernel_resources.hpp"
#include "kernels/raytrace_kernels.hpp"
#include "simt/gpu.hpp"

using namespace uksim;
using namespace uksim::bench;

namespace {

void
BM_Table2_AssembleTraditional(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(kernels::buildTraditional());
}

void
BM_Table2_AssembleMicroKernel(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(kernels::buildMicroKernel());
}

} // namespace

BENCHMARK(BM_Table2_AssembleTraditional)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Table2_AssembleMicroKernel)->Unit(benchmark::kMicrosecond);

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    printHeader("Table II: kernel processor resource requirements per "
                "thread");
    benchmark::RunSpecifiedBenchmarks();

    Program trad = kernels::buildTraditional();
    Program uk = kernels::buildMicroKernel();
    auto tr = kernels::analyzeProgram(trad, "Traditional");
    auto ur = kernels::analyzeProgram(uk, "u-kernel");

    harness::TextTable t;
    t.header({"Resource", "Traditional", "u-kernel",
              "paper (Trad / uK)"});
    t.row({"Registers", std::to_string(tr.registers),
           std::to_string(ur.registers), "22 / 20"});
    t.row({"Shared memory (B)", std::to_string(tr.sharedBytes),
           std::to_string(ur.sharedBytes), "60 / 56"});
    t.row({"Off-chip private (B)",
           std::to_string(trad.resources.localBytes + tr.globalBytes),
           std::to_string(uk.resources.localBytes + ur.globalBytes),
           "388 / 384"});
    t.row({"Constant memory (B)", std::to_string(tr.constBytes),
           std::to_string(ur.constBytes), "128 / 24"});
    t.row({"Spawn memory (B)", std::to_string(tr.spawnStateBytes),
           std::to_string(ur.spawnStateBytes), "0 / 48"});
    t.row({"Micro-kernels", std::to_string(tr.microKernels),
           std::to_string(ur.microKernels), "- / >=3"});
    t.row({"Static instructions", std::to_string(tr.instructions),
           std::to_string(ur.instructions), "-"});
    std::printf("%s\n", t.str().c_str());

    // Occupancy consequences (Sec. VI-A).
    GpuConfig cfg;
    cfg.scheduling = SchedulingMode::Block;
    Occupancy blockOcc = Gpu::computeOccupancy(cfg, trad);
    cfg.scheduling = SchedulingMode::Thread;
    Occupancy warpOcc = Gpu::computeOccupancy(cfg, trad);
    Occupancy ukOcc = Gpu::computeOccupancy(cfg, uk);
    std::printf("threads/SM: traditional block-sched %d (paper 512), "
                "traditional warp-sched %d, u-kernel %d (paper 800); "
                "limiters: %s / %s / %s\n",
                blockOcc.threadsPerSm, warpOcc.threadsPerSm,
                ukOcc.threadsPerSm, blockOcc.limiter, warpOcc.limiter,
                ukOcc.limiter);
    writeCsvIfRequested();
    return 0;
}
