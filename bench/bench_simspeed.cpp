/**
 * @file
 * Simulator host-speed benchmark: simulated kilocycles per wall-clock
 * second for the serial engine and for the parallel cycle engine at
 * several host thread counts, on the micro-kernel ray-tracing workload.
 *
 * This measures the simulator, not the modelled machine: the simulated
 * statistics are asserted bit-identical across all thread counts, so
 * the only thing that varies is wall time.
 *
 * Usage:
 *   bench_simspeed [--smoke] [--out PATH] [--threads N1,N2,...]
 *
 * --smoke     tiny workload for CI (a few seconds total)
 * --out PATH  JSON output path (default BENCH_simspeed.json)
 * --threads   comma-separated host thread counts (default 1,2,4 plus
 *             the hardware concurrency when larger)
 *
 * Output: a text table and a JSON report of the form
 *   {"benchmark":"simspeed","host_cores":C,"results":[
 *     {"threads":T,"sim_cycles":N,"wall_seconds":S,
 *      "sim_kcycles_per_sec":K,"speedup_vs_serial":X,
 *      "bit_identical":true}, ...]}
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

using namespace uksim;
using namespace uksim::harness;

namespace {

struct Options {
    bool smoke = false;
    std::string outPath = "BENCH_simspeed.json";
    std::vector<int> threads;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            opt.outPath = argv[++i];
        } else if (arg == "--threads" && i + 1 < argc) {
            std::string list = argv[++i];
            size_t pos = 0;
            while (pos < list.size()) {
                size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                int n = std::atoi(list.substr(pos, comma - pos).c_str());
                if (n > 0)
                    opt.threads.push_back(n);
                pos = comma + 1;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out PATH] "
                         "[--threads N1,N2,...]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    if (opt.threads.empty()) {
        opt.threads = {1, 2, 4};
        int hw = static_cast<int>(std::thread::hardware_concurrency());
        if (hw > 4)
            opt.threads.push_back(hw);
    }
    return opt;
}

struct RunResult {
    int threads = 0;
    uint64_t simCycles = 0;
    double wallSeconds = 0.0;
    double kcyclesPerSec = 0.0;
    bool bitIdentical = true;   ///< stats match the serial run exactly
};

ExperimentConfig
makeConfig(const Options &opt, int hostThreads)
{
    ExperimentConfig cfg;
    cfg.sceneName = "conference";
    cfg.kernel = KernelKind::MicroKernel;
    cfg.sceneParams.detail = opt.smoke ? 4 : 10;
    cfg.sceneParams.imageWidth = opt.smoke ? 32 : 64;
    cfg.sceneParams.imageHeight = opt.smoke ? 32 : 64;
    cfg.maxCycles = opt.smoke ? 5000 : 50000;
    cfg.baseConfig.maxCycles = cfg.maxCycles;
    cfg.baseConfig.hostThreads = hostThreads;
    return cfg;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    // This benchmark sets thread counts explicitly per run; the
    // UKSIM_THREADS override would silently make every run identical.
    unsetenv("UKSIM_THREADS");

    ExperimentConfig probe = makeConfig(opt, 1);
    std::printf("bench_simspeed: %s, %dx%d, detail %d, %llu-cycle window, "
                "%d SMs\n",
                probe.sceneName.c_str(), probe.sceneParams.imageWidth,
                probe.sceneParams.imageHeight, probe.sceneParams.detail,
                static_cast<unsigned long long>(probe.maxCycles),
                probe.baseConfig.numSms);
    const int hostCores =
        static_cast<int>(std::thread::hardware_concurrency());
    std::printf("host cores: %d\n\n", hostCores);

    PreparedScene scene = prepareScene(probe.sceneName, probe.sceneParams);

    std::vector<RunResult> results;
    const SimStats *serialStats = nullptr;
    std::vector<SimStats> allStats;
    allStats.reserve(opt.threads.size());

    for (int threads : opt.threads) {
        ExperimentConfig cfg = makeConfig(opt, threads);
        // Warm-up pass: touches the scene upload path and page cache so
        // the timed pass measures steady-state simulation speed.
        if (results.empty())
            runExperiment(scene, cfg);

        auto t0 = std::chrono::steady_clock::now();
        ExperimentResult r = runExperiment(scene, cfg);
        auto t1 = std::chrono::steady_clock::now();

        RunResult rr;
        rr.threads = threads;
        rr.simCycles = r.stats.cycles;
        rr.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
        rr.kcyclesPerSec = rr.wallSeconds > 0.0
                               ? double(rr.simCycles) / rr.wallSeconds /
                                     1000.0
                               : 0.0;
        allStats.push_back(r.stats);
        if (!serialStats)
            serialStats = &allStats.front();
        rr.bitIdentical = allStats.back() == *serialStats;
        results.push_back(rr);
    }

    TextTable table;
    table.header({"threads", "sim kcycles", "wall s", "sim kcycles/s",
                  "speedup", "bit-identical"});
    const double serialRate = results.front().kcyclesPerSec;
    for (const RunResult &r : results) {
        table.row({std::to_string(r.threads),
                   fmt(double(r.simCycles) / 1000.0, 1),
                   fmt(r.wallSeconds, 3), fmt(r.kcyclesPerSec, 1),
                   fmt(serialRate > 0 ? r.kcyclesPerSec / serialRate : 0.0,
                       2),
                   r.bitIdentical ? "yes" : "NO"});
    }
    std::fputs(table.str().c_str(), stdout);

    FILE *f = std::fopen(opt.outPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", opt.outPath.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"benchmark\": \"simspeed\",\n"
                 "  \"workload\": {\"scene\": \"%s\", \"kernel\": "
                 "\"uk\", \"resolution\": %d, \"detail\": %d, "
                 "\"max_cycles\": %llu},\n"
                 "  \"host_cores\": %d,\n  \"smoke\": %s,\n"
                 "  \"results\": [\n",
                 probe.sceneName.c_str(), probe.sceneParams.imageWidth,
                 probe.sceneParams.detail,
                 static_cast<unsigned long long>(probe.maxCycles),
                 hostCores, opt.smoke ? "true" : "false");
    bool allIdentical = true;
    for (size_t i = 0; i < results.size(); i++) {
        const RunResult &r = results[i];
        allIdentical = allIdentical && r.bitIdentical;
        std::fprintf(
            f,
            "    {\"threads\": %d, \"sim_cycles\": %llu, "
            "\"wall_seconds\": %.6f, \"sim_kcycles_per_sec\": %.2f, "
            "\"speedup_vs_serial\": %.3f, \"bit_identical\": %s}%s\n",
            r.threads, static_cast<unsigned long long>(r.simCycles),
            r.wallSeconds, r.kcyclesPerSec,
            serialRate > 0 ? r.kcyclesPerSec / serialRate : 0.0,
            r.bitIdentical ? "true" : "false",
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", opt.outPath.c_str());

    if (!allIdentical) {
        std::fprintf(stderr,
                     "ERROR: threaded run diverged from serial stats\n");
        return 1;
    }
    return 0;
}
