/**
 * @file
 * Simulator host-speed benchmark: simulated kilocycles per wall-clock
 * second for the serial engine and for the parallel cycle engine at
 * several host thread counts, with the event-driven idle-cycle
 * fast-forward both off and on, on the micro-kernel ray-tracing
 * workload.
 *
 * This measures the simulator, not the modelled machine: the simulated
 * statistics are asserted bit-identical across all thread counts AND
 * across both fast-forward settings, so the only thing that varies is
 * wall time. The non-smoke workload is deliberately memory-bound (see
 * makeConfig) so the fast-forward legs exercise long skippable spans.
 *
 * Usage:
 *   bench_simspeed [--smoke] [--out PATH] [--threads N1,N2,...]
 *                  [--fast-forward on|off|both]
 *
 * --smoke          tiny workload for CI (a few seconds total)
 * --out PATH       JSON output path (default BENCH_simspeed.json)
 * --threads        comma-separated host thread counts (default 1,2,4
 *                  plus the hardware concurrency when larger)
 * --fast-forward   which engine legs to run (default both)
 *
 * Output: a text table and a JSON report of the form
 *   {"benchmark":"simspeed","host_cores":C,"results":[
 *     {"threads":T,"fast_forward":B,"sim_cycles":N,"wall_seconds":S,
 *      "sim_kcycles_per_sec":K,"speedup_vs_serial":X,
 *      "cycles_skipped":N,"jumps":N,"largest_jump":N,
 *      "bit_identical":true}, ...]}
 * where speedup_vs_serial is relative to the first leg (serial,
 * fast-forward off when that leg is enabled) and bit_identical compares
 * every leg's SimStats against that same reference.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "harness/cli_args.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

using namespace uksim;
using namespace uksim::harness;

namespace {

struct Options {
    bool smoke = false;
    std::string outPath = "BENCH_simspeed.json";
    std::vector<int> threads;
    bool legOff = true;     ///< run the fast-forward-off leg
    bool legOn = true;      ///< run the fast-forward-on leg
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    harness::cli::ArgReader args("bench_simspeed", argc, argv);
    while (args.next()) {
        if (args.is("--smoke")) {
            opt.smoke = true;
        } else if (args.is("--out")) {
            opt.outPath = args.value();
        } else if (args.is("--threads")) {
            for (int n : args.intList())
                if (n > 0)
                    opt.threads.push_back(n);
        } else if (args.is("--fast-forward")) {
            std::string mode = args.value();
            if (mode == "on") {
                opt.legOff = false;
            } else if (mode == "off") {
                opt.legOn = false;
            } else if (mode != "both") {
                std::fprintf(stderr,
                             "--fast-forward takes on|off|both\n");
                std::exit(2);
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out PATH] "
                         "[--threads N1,N2,...] "
                         "[--fast-forward on|off|both]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    if (opt.threads.empty()) {
        opt.threads = {1, 2, 4};
        int hw = static_cast<int>(std::thread::hardware_concurrency());
        if (hw > 4)
            opt.threads.push_back(hw);
    }
    return opt;
}

struct RunResult {
    int threads = 0;
    bool fastForward = false;
    uint64_t simCycles = 0;
    double wallSeconds = 0.0;
    double kcyclesPerSec = 0.0;
    uint64_t cyclesSkipped = 0;
    uint64_t jumps = 0;
    uint64_t largestJump = 0;
    bool bitIdentical = true;   ///< stats match the reference run exactly
};

/**
 * The measured workload is the memory-bound shape of the micro-kernel
 * conference trace: a small ray grid (one warp per SM, so nothing hides
 * DRAM latency) with the texture caches off (every kd-tree/triangle
 * read pays the full off-chip round trip) and a cycle budget that lets
 * the grid drain completely. This is the regime the idle-cycle
 * fast-forward targets — long quiescent spans between DRAM wake-ups —
 * and it still exercises the full uk spawn/formation path for the
 * host-thread scaling legs.
 */
ExperimentConfig
makeConfig(const Options &opt, int hostThreads, bool fastForward)
{
    ExperimentConfig cfg;
    cfg.sceneName = "conference";
    cfg.kernel = KernelKind::MicroKernel;
    cfg.sceneParams.detail = opt.smoke ? 4 : 10;
    cfg.sceneParams.imageWidth = opt.smoke ? 32 : 16;
    cfg.sceneParams.imageHeight = opt.smoke ? 32 : 16;
    cfg.maxCycles = opt.smoke ? 5000 : 2000000;
    cfg.baseConfig.maxCycles = cfg.maxCycles;
    cfg.baseConfig.hostThreads = hostThreads;
    cfg.baseConfig.fastForward = fastForward;
    if (!opt.smoke) {
        cfg.baseConfig.texL1BytesPerSm = 0;
        cfg.baseConfig.texL2BytesPerPartition = 0;
    }
    return cfg;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    // This benchmark sets thread counts and the fast-forward switch
    // explicitly per run; the environment overrides would silently make
    // every leg identical.
    unsetenv("UKSIM_THREADS");
    unsetenv("UKSIM_FASTFWD");

    std::vector<bool> legs;
    if (opt.legOff)
        legs.push_back(false);
    if (opt.legOn)
        legs.push_back(true);

    ExperimentConfig probe = makeConfig(opt, 1, false);
    std::printf("bench_simspeed: %s, %dx%d, detail %d, %llu-cycle window, "
                "%d SMs\n",
                probe.sceneName.c_str(), probe.sceneParams.imageWidth,
                probe.sceneParams.imageHeight, probe.sceneParams.detail,
                static_cast<unsigned long long>(probe.maxCycles),
                probe.baseConfig.numSms);
    const int hostCores =
        static_cast<int>(std::thread::hardware_concurrency());
    std::printf("host cores: %d\n\n", hostCores);

    PreparedScene scene = prepareScene(probe.sceneName, probe.sceneParams);

    std::vector<RunResult> results;
    std::vector<SimStats> allStats;
    allStats.reserve(opt.threads.size() * legs.size());

    for (int threads : opt.threads) {
        for (bool ff : legs) {
            ExperimentConfig cfg = makeConfig(opt, threads, ff);
            // Warm-up pass: touches the scene upload path and page cache
            // so the timed passes measure steady-state simulation speed.
            if (results.empty())
                runExperiment(scene, cfg);

            auto t0 = std::chrono::steady_clock::now();
            ExperimentResult r = runExperiment(scene, cfg);
            auto t1 = std::chrono::steady_clock::now();

            RunResult rr;
            rr.threads = threads;
            rr.fastForward = ff;
            rr.simCycles = r.stats.cycles;
            rr.wallSeconds =
                std::chrono::duration<double>(t1 - t0).count();
            rr.kcyclesPerSec =
                rr.wallSeconds > 0.0
                    ? double(rr.simCycles) / rr.wallSeconds / 1000.0
                    : 0.0;
            rr.cyclesSkipped = r.fastForward.cyclesSkipped;
            rr.jumps = r.fastForward.jumps;
            rr.largestJump = r.fastForward.largestJump;
            allStats.push_back(r.stats);
            rr.bitIdentical = allStats.back() == allStats.front();
            results.push_back(rr);
        }
    }

    TextTable table;
    table.header({"threads", "fastfwd", "sim kcycles", "wall s",
                  "sim kcycles/s", "speedup", "skipped", "jumps",
                  "bit-identical"});
    const double serialRate = results.front().kcyclesPerSec;
    for (const RunResult &r : results) {
        table.row({std::to_string(r.threads), r.fastForward ? "on" : "off",
                   fmt(double(r.simCycles) / 1000.0, 1),
                   fmt(r.wallSeconds, 3), fmt(r.kcyclesPerSec, 1),
                   fmt(serialRate > 0 ? r.kcyclesPerSec / serialRate : 0.0,
                       2),
                   std::to_string(r.cyclesSkipped),
                   std::to_string(r.jumps),
                   r.bitIdentical ? "yes" : "NO"});
    }
    std::fputs(table.str().c_str(), stdout);

    FILE *f = std::fopen(opt.outPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", opt.outPath.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"benchmark\": \"simspeed\",\n"
                 "  \"workload\": {\"scene\": \"%s\", \"kernel\": "
                 "\"uk\", \"resolution\": %d, \"detail\": %d, "
                 "\"max_cycles\": %llu, \"tex_caches\": %s},\n"
                 "  \"host_cores\": %d,\n  \"smoke\": %s,\n"
                 "  \"results\": [\n",
                 probe.sceneName.c_str(), probe.sceneParams.imageWidth,
                 probe.sceneParams.detail,
                 static_cast<unsigned long long>(probe.maxCycles),
                 probe.baseConfig.texL2BytesPerPartition == 0 ? "\"off\""
                                                              : "\"on\"",
                 hostCores, opt.smoke ? "true" : "false");
    bool allIdentical = true;
    for (size_t i = 0; i < results.size(); i++) {
        const RunResult &r = results[i];
        allIdentical = allIdentical && r.bitIdentical;
        std::fprintf(
            f,
            "    {\"threads\": %d, \"fast_forward\": %s, "
            "\"sim_cycles\": %llu, "
            "\"wall_seconds\": %.6f, \"sim_kcycles_per_sec\": %.2f, "
            "\"speedup_vs_serial\": %.3f, \"cycles_skipped\": %llu, "
            "\"jumps\": %llu, \"largest_jump\": %llu, "
            "\"bit_identical\": %s}%s\n",
            r.threads, r.fastForward ? "true" : "false",
            static_cast<unsigned long long>(r.simCycles), r.wallSeconds,
            r.kcyclesPerSec,
            serialRate > 0 ? r.kcyclesPerSec / serialRate : 0.0,
            static_cast<unsigned long long>(r.cyclesSkipped),
            static_cast<unsigned long long>(r.jumps),
            static_cast<unsigned long long>(r.largestJump),
            r.bitIdentical ? "true" : "false",
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", opt.outPath.c_str());

    if (!allIdentical) {
        std::fprintf(stderr,
                     "ERROR: a leg diverged from the reference stats "
                     "(threads/fast-forward must not change results)\n");
        return 1;
    }
    return 0;
}
