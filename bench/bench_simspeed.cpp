/**
 * @file
 * Simulator host-speed benchmark: simulated kilocycles per wall-clock
 * second for the serial engine and for the parallel cycle engine at
 * several host thread counts, with the event-driven idle-cycle
 * fast-forward both off and on, on the micro-kernel ray-tracing
 * workload.
 *
 * This measures the simulator, not the modelled machine: the simulated
 * statistics are asserted bit-identical across all thread counts AND
 * across both fast-forward settings, so the only thing that varies is
 * wall time. The non-smoke workload is deliberately memory-bound (see
 * makeConfig) so the fast-forward legs exercise long skippable spans.
 *
 * Usage:
 *   bench_simspeed [--smoke] [--out PATH] [--threads N1,N2,...]
 *                  [--fast-forward on|off|both] [--epochs on|off|both]
 *                  [--block-exec on|off|both]
 *
 * --smoke          tiny workload for CI (a few seconds total)
 * --out PATH       JSON output path (default BENCH_simspeed.json)
 * --threads        comma-separated host thread counts (default 1,2,4
 *                  plus the hardware concurrency when larger)
 * --fast-forward   which engine legs to run (default both)
 * --epochs         lockstep vs epoch-engine legs (default both); with
 *                  "both", every leg pair's statistics are asserted
 *                  bit-identical across the engines too
 * --block-exec     superblock-execution legs (default both); with
 *                  "both", block-exec-on legs are asserted bit-identical
 *                  against the block-exec-off reference as well
 *
 * Output: a text table and a JSON report of the form
 *   {"benchmark":"simspeed","host_cores":C,"results":[
 *     {"threads":T,"fast_forward":B,"epoch_engine":B,"block_exec":B,
 *      "sim_cycles":N,
 *      "wall_seconds":S,"sim_kcycles_per_sec":K,"speedup_vs_serial":X,
 *      "cycles_skipped":N,"jumps":N,"largest_jump":N,
 *      "epochs":N,"rounds":N,"mean_epoch_cycles":X,
 *      "epoch_advance_wall_ns":N,"epoch_merge_wall_ns":N,
 *      "blockexec":{"spans":N,"largest_span":N,"fused_runs":N,
 *       "fused_ops":N,"idle_cycles_skipped":N,"fallbacks":N,
 *       "blocks_compiled":N,"fusible_blocks":N},
 *      "parity_bound":B,"bit_identical":true}, ...]}
 * where speedup_vs_serial is relative to the first leg, bit_identical
 * compares every leg's SimStats against that same reference, and
 * parity_bound flags legs asking for more host threads than the
 * machine has cores (their scaling is bounded by time-slicing, not by
 * the engine).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "harness/cli_args.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

using namespace uksim;
using namespace uksim::harness;

namespace {

struct Options {
    bool smoke = false;
    std::string outPath = "BENCH_simspeed.json";
    std::vector<int> threads;
    bool legOff = true;     ///< run the fast-forward-off leg
    bool legOn = true;      ///< run the fast-forward-on leg
    bool legLockstep = true; ///< run the lockstep-engine leg
    bool legEpoch = true;    ///< run the epoch-engine leg
    bool legBlockOff = true; ///< run the block-exec-off leg
    bool legBlockOn = true;  ///< run the block-exec-on leg
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    harness::cli::ArgReader args("bench_simspeed", argc, argv);
    while (args.next()) {
        if (args.is("--smoke")) {
            opt.smoke = true;
        } else if (args.is("--out")) {
            opt.outPath = args.value();
        } else if (args.is("--threads")) {
            for (int n : args.intList())
                if (n > 0)
                    opt.threads.push_back(n);
        } else if (args.is("--fast-forward")) {
            std::string mode = args.value();
            if (mode == "on") {
                opt.legOff = false;
            } else if (mode == "off") {
                opt.legOn = false;
            } else if (mode != "both") {
                std::fprintf(stderr,
                             "--fast-forward takes on|off|both\n");
                std::exit(2);
            }
        } else if (args.is("--epochs")) {
            std::string mode = args.value();
            if (mode == "on") {
                opt.legLockstep = false;
            } else if (mode == "off") {
                opt.legEpoch = false;
            } else if (mode != "both") {
                std::fprintf(stderr, "--epochs takes on|off|both\n");
                std::exit(2);
            }
        } else if (args.is("--block-exec")) {
            std::string mode = args.value();
            if (mode == "on") {
                opt.legBlockOff = false;
            } else if (mode == "off") {
                opt.legBlockOn = false;
            } else if (mode != "both") {
                std::fprintf(stderr, "--block-exec takes on|off|both\n");
                std::exit(2);
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out PATH] "
                         "[--threads N1,N2,...] "
                         "[--fast-forward on|off|both] "
                         "[--epochs on|off|both] "
                         "[--block-exec on|off|both]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    if (opt.threads.empty()) {
        opt.threads = {1, 2, 4};
        int hw = static_cast<int>(std::thread::hardware_concurrency());
        if (hw > 4)
            opt.threads.push_back(hw);
    }
    return opt;
}

struct RunResult {
    int threads = 0;
    bool fastForward = false;
    bool epochEngine = false;
    bool blockExec = false;
    uint64_t simCycles = 0;
    double wallSeconds = 0.0;
    double kcyclesPerSec = 0.0;
    uint64_t cyclesSkipped = 0;
    uint64_t jumps = 0;
    uint64_t largestJump = 0;
    EpochStats epoch;
    BlockExecStats bx;
    bool parityBound = false;   ///< more host threads than cores
    bool bitIdentical = true;   ///< stats match the reference run exactly
};

/**
 * The measured workload is the memory-bound shape of the micro-kernel
 * conference trace: a small ray grid (one warp per SM, so nothing hides
 * DRAM latency) with the texture caches off (every kd-tree/triangle
 * read pays the full off-chip round trip) and a cycle budget that lets
 * the grid drain completely. This is the regime the idle-cycle
 * fast-forward and the superblock engine target — long quiescent spans
 * between DRAM wake-ups and straight-line single-warp issue runs — and
 * it still exercises the full uk spawn/formation path for the
 * host-thread scaling legs. The smoke shape is the same regime scaled
 * down (detail 4, smaller cycle budget) so the CI speed guards measure
 * the engines, not the cap.
 */
ExperimentConfig
makeConfig(const Options &opt, int hostThreads, bool fastForward,
           bool epochEngine, bool blockExec)
{
    ExperimentConfig cfg;
    cfg.sceneName = "conference";
    cfg.kernel = KernelKind::MicroKernel;
    cfg.sceneParams.detail = opt.smoke ? 4 : 10;
    cfg.sceneParams.imageWidth = 16;
    cfg.sceneParams.imageHeight = 16;
    cfg.maxCycles = opt.smoke ? 120000 : 2000000;
    cfg.baseConfig.maxCycles = cfg.maxCycles;
    cfg.baseConfig.hostThreads = hostThreads;
    cfg.baseConfig.fastForward = fastForward;
    cfg.baseConfig.epochEngine = epochEngine;
    cfg.baseConfig.blockExec = blockExec;
    cfg.baseConfig.texL1BytesPerSm = 0;
    cfg.baseConfig.texL2BytesPerPartition = 0;
    return cfg;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    // This benchmark sets thread counts, the fast-forward switch and
    // the cycle engines explicitly per run; the environment overrides
    // would silently make every leg identical.
    unsetenv("UKSIM_FASTFWD");
    unsetenv("UKSIM_EPOCHS");
    unsetenv("UKSIM_BLOCKEXEC");

    std::vector<bool> legs;
    if (opt.legOff)
        legs.push_back(false);
    if (opt.legOn)
        legs.push_back(true);
    std::vector<bool> engineLegs;
    if (opt.legLockstep)
        engineLegs.push_back(false);
    if (opt.legEpoch)
        engineLegs.push_back(true);
    std::vector<bool> blockLegs;
    if (opt.legBlockOff)
        blockLegs.push_back(false);
    if (opt.legBlockOn)
        blockLegs.push_back(true);

    ExperimentConfig probe = makeConfig(opt, 1, false, false, false);
    std::printf("bench_simspeed: %s, %dx%d, detail %d, %llu-cycle window, "
                "%d SMs\n",
                probe.sceneName.c_str(), probe.sceneParams.imageWidth,
                probe.sceneParams.imageHeight, probe.sceneParams.detail,
                static_cast<unsigned long long>(probe.maxCycles),
                probe.baseConfig.numSms);
    const int hostCores =
        static_cast<int>(std::thread::hardware_concurrency());
    std::printf("host cores: %d\n\n", hostCores);

    PreparedScene scene = prepareScene(probe.sceneName, probe.sceneParams);

    std::vector<RunResult> results;
    std::vector<SimStats> allStats;
    allStats.reserve(opt.threads.size() * legs.size());

    for (int threads : opt.threads) {
        // A numeric UKSIM_THREADS is an explicit request (with
        // oversubscription allowed) — required here because the no-env
        // default clamps to the hardware concurrency, which would
        // silently collapse the scaling legs on small CI hosts.
        setenv("UKSIM_THREADS", std::to_string(threads).c_str(), 1);
        for (bool blockExec : blockLegs) {
            for (bool engine : engineLegs) {
                for (bool ff : legs) {
                    ExperimentConfig cfg =
                        makeConfig(opt, threads, ff, engine, blockExec);
                    // Warm-up pass: touches the scene upload path and
                    // page cache so the timed passes measure
                    // steady-state simulation speed.
                    if (results.empty())
                        runExperiment(scene, cfg);

                    auto t0 = std::chrono::steady_clock::now();
                    ExperimentResult r = runExperiment(scene, cfg);
                    auto t1 = std::chrono::steady_clock::now();

                    RunResult rr;
                    rr.threads = threads;
                    rr.fastForward = ff;
                    rr.epochEngine = engine;
                    rr.blockExec = blockExec;
                    rr.simCycles = r.stats.cycles;
                    rr.wallSeconds =
                        std::chrono::duration<double>(t1 - t0).count();
                    rr.kcyclesPerSec =
                        rr.wallSeconds > 0.0
                            ? double(rr.simCycles) / rr.wallSeconds /
                                  1000.0
                            : 0.0;
                    rr.cyclesSkipped = r.fastForward.cyclesSkipped;
                    rr.jumps = r.fastForward.jumps;
                    rr.largestJump = r.fastForward.largestJump;
                    rr.epoch = r.epoch;
                    rr.bx = r.blockExec;
                    rr.parityBound = hostCores > 0 && threads > hostCores;
                    allStats.push_back(r.stats);
                    rr.bitIdentical = allStats.back() == allStats.front();
                    results.push_back(rr);
                }
            }
        }
    }
    unsetenv("UKSIM_THREADS");

    TextTable table;
    table.header({"threads", "engine", "fastfwd", "blockexec",
                  "sim kcycles", "wall s", "sim kcycles/s", "speedup",
                  "epochs", "spans", "fused ops", "bit-identical"});
    const double serialRate = results.front().kcyclesPerSec;
    for (const RunResult &r : results) {
        table.row({std::to_string(r.threads),
                   r.epochEngine ? "epoch" : "lockstep",
                   r.fastForward ? "on" : "off",
                   r.blockExec ? "on" : "off",
                   fmt(double(r.simCycles) / 1000.0, 1),
                   fmt(r.wallSeconds, 3), fmt(r.kcyclesPerSec, 1),
                   fmt(serialRate > 0 ? r.kcyclesPerSec / serialRate : 0.0,
                       2),
                   std::to_string(r.epoch.epochs),
                   std::to_string(r.bx.spans),
                   std::to_string(r.bx.fusedOps),
                   r.bitIdentical ? "yes" : "NO"});
    }
    std::fputs(table.str().c_str(), stdout);

    FILE *f = std::fopen(opt.outPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", opt.outPath.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"benchmark\": \"simspeed\",\n"
                 "  \"workload\": {\"scene\": \"%s\", \"kernel\": "
                 "\"uk\", \"resolution\": %d, \"detail\": %d, "
                 "\"max_cycles\": %llu, \"tex_caches\": %s},\n"
                 "  \"host_cores\": %d,\n  \"smoke\": %s,\n"
                 "  \"results\": [\n",
                 probe.sceneName.c_str(), probe.sceneParams.imageWidth,
                 probe.sceneParams.detail,
                 static_cast<unsigned long long>(probe.maxCycles),
                 probe.baseConfig.texL2BytesPerPartition == 0 ? "\"off\""
                                                              : "\"on\"",
                 hostCores, opt.smoke ? "true" : "false");
    bool allIdentical = true;
    for (size_t i = 0; i < results.size(); i++) {
        const RunResult &r = results[i];
        allIdentical = allIdentical && r.bitIdentical;
        const double meanEpoch =
            r.epoch.epochs
                ? double(r.epoch.cyclesTotal) / double(r.epoch.epochs)
                : 0.0;
        uint64_t fallbacks = 0;
        for (uint64_t c : r.bx.fallbacks)
            fallbacks += c;
        std::fprintf(
            f,
            "    {\"threads\": %d, \"fast_forward\": %s, "
            "\"epoch_engine\": %s, \"block_exec\": %s, "
            "\"sim_cycles\": %llu, "
            "\"wall_seconds\": %.6f, \"sim_kcycles_per_sec\": %.2f, "
            "\"speedup_vs_serial\": %.3f, \"cycles_skipped\": %llu, "
            "\"jumps\": %llu, \"largest_jump\": %llu, "
            "\"epochs\": %llu, \"rounds\": %llu, "
            "\"mean_epoch_cycles\": %.2f, "
            "\"epoch_advance_wall_ns\": %llu, "
            "\"epoch_merge_wall_ns\": %llu, "
            "\"blockexec\": {\"spans\": %llu, \"largest_span\": %llu, "
            "\"fused_runs\": %llu, \"fused_ops\": %llu, "
            "\"idle_cycles_skipped\": %llu, \"fallbacks\": %llu, "
            "\"blocks_compiled\": %llu, \"fusible_blocks\": %llu}, "
            "\"parity_bound\": %s, "
            "\"bit_identical\": %s}%s\n",
            r.threads, r.fastForward ? "true" : "false",
            r.epochEngine ? "true" : "false",
            r.blockExec ? "true" : "false",
            static_cast<unsigned long long>(r.simCycles), r.wallSeconds,
            r.kcyclesPerSec,
            serialRate > 0 ? r.kcyclesPerSec / serialRate : 0.0,
            static_cast<unsigned long long>(r.cyclesSkipped),
            static_cast<unsigned long long>(r.jumps),
            static_cast<unsigned long long>(r.largestJump),
            static_cast<unsigned long long>(r.epoch.epochs),
            static_cast<unsigned long long>(r.epoch.rounds), meanEpoch,
            static_cast<unsigned long long>(r.epoch.advanceWallNs),
            static_cast<unsigned long long>(r.epoch.mergeWallNs),
            static_cast<unsigned long long>(r.bx.spans),
            static_cast<unsigned long long>(r.bx.largestSpan),
            static_cast<unsigned long long>(r.bx.fusedRuns),
            static_cast<unsigned long long>(r.bx.fusedOps),
            static_cast<unsigned long long>(r.bx.idleCyclesSkipped),
            static_cast<unsigned long long>(fallbacks),
            static_cast<unsigned long long>(r.bx.blocksCompiled),
            static_cast<unsigned long long>(r.bx.fusibleBlocks),
            r.parityBound ? "true" : "false",
            r.bitIdentical ? "true" : "false",
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", opt.outPath.c_str());

    if (!allIdentical) {
        std::fprintf(stderr,
                     "ERROR: a leg diverged from the reference stats "
                     "(threads/fast-forward/epochs/block-exec must not "
                     "change results)\n");
        return 1;
    }
    return 0;
}
