/**
 * @file
 * Table III: benchmark scenes with object counts and tree data
 * structure parameters. (Our procedural stand-ins for fairyforest /
 * atrium / conference — see DESIGN.md Sec. 4 for the substitution.)
 */

#include "bench_common.hpp"

using namespace uksim;
using namespace uksim::bench;

namespace {

void
registerBuild(const std::string &scene)
{
    benchmark::RegisterBenchmark(
        ("Table3/build_kdtree/" + scene).c_str(),
        [scene](benchmark::State &st) {
            harness::ExperimentConfig cfg = baseExperiment();
            rt::Scene s = rt::makeSceneByName(scene, cfg.sceneParams);
            for (auto _ : st)
                benchmark::DoNotOptimize(rt::KdTree::build(s.triangles));
        })
        ->Unit(benchmark::kMillisecond);
}

} // namespace

int
main(int argc, char **argv)
{
    for (const std::string &scene : rt::benchmarkSceneNames())
        registerBuild(scene);

    initBench(argc, argv);
    printHeader("Table III: benchmark scenes and kd-tree parameters");
    benchmark::RunSpecifiedBenchmarks();

    harness::ExperimentConfig cfg = baseExperiment();
    harness::TextTable t;
    t.header({"scene", "triangles", "kd nodes", "leaves", "max depth",
              "avg leaf tris", "empty leaves", "distribution property"});
    const char *props[] = {
        "open space, dense clusters",
        "uniformly dense",
        "dense, unevenly distributed",
    };
    int i = 0;
    for (const std::string &scene : rt::benchmarkSceneNames()) {
        harness::PreparedScene &p =
            sceneCache().get(scene, cfg.sceneParams);
        rt::KdTreeStats s = p.tree.stats();
        t.row({scene, std::to_string(p.scene.triangles.size()),
               std::to_string(s.nodeCount), std::to_string(s.leafCount),
               std::to_string(s.maxDepth),
               harness::fmt(s.avgLeafPrims, 1),
               std::to_string(s.emptyLeaves), props[i++]});
    }
    std::printf("%s", t.str().c_str());
    std::printf("\n(paper scenes: fairyforest 174k tris, atrium 262k, "
                "conference 283k — ours are procedural analogues that "
                "preserve each scene's density distribution, not its "
                "absolute size)\n");
    writeCsvIfRequested();
    return 0;
}
