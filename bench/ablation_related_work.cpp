/**
 * @file
 * Ablation: the paper's Related Work triangle (Sec. VIII) on the
 * conference scene — static PDOM assignment vs the persistent-threads
 * software work queue vs hardware dynamic micro-kernels.
 */

#include "bench_common.hpp"

using namespace uksim;
using namespace uksim::bench;
using namespace uksim::harness;

namespace {

std::map<std::string, ExperimentResult> g_rows;

void
runPoint(benchmark::State &state, KernelKind kind, const char *label)
{
    ExperimentConfig cfg = baseExperiment();
    cfg.sceneName = "conference";
    cfg.kernel = kind;
    g_rows[label] = runCounted(state, cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::RegisterBenchmark("RelatedWork/PDOM_static",
                                 [](benchmark::State &st) {
                                     runPoint(st, KernelKind::Traditional,
                                              "PDOM static");
                                 })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        "RelatedWork/persistent_threads",
        [](benchmark::State &st) {
            runPoint(st, KernelKind::PersistentThreads,
                     "persistent threads");
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        "RelatedWork/dynamic_uKernels",
        [](benchmark::State &st) {
            runPoint(st, KernelKind::MicroKernel, "dynamic u-kernels");
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);

    initBench(argc, argv);
    printHeader("Ablation: related-work comparison (conference)");
    benchmark::RunSpecifiedBenchmarks();

    harness::TextTable t;
    t.header({"approach", "Mrays/s", "IPC", "SIMT eff", "notes"});
    auto row = [&](const char *label, const char *note) {
        const ExperimentResult &r = g_rows[label];
        t.row({label, harness::fmt(r.mraysPerSec, 1),
               harness::fmt(r.ipc, 0), harness::fmt(r.simtEfficiency, 2),
               note});
    };
    row("PDOM static", "one thread per ray, block-free warp sched");
    row("persistent threads",
        "per-ray atomic work queue (naive PT)");
    row("dynamic u-kernels", "hardware spawn + warp re-formation");
    std::printf("%s", t.str().c_str());
    std::printf("\n(persistent threads fixes load imbalance but not "
                "intra-warp divergence, and its per-ray atomics "
                "serialize — the latency cost the paper's Sec. VIII "
                "calls out; production PT implementations amortize "
                "the atomic over a warp-sized batch)\n");
    writeCsvIfRequested();
    return 0;
}
