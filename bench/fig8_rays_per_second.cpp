/**
 * @file
 * Figure 8: rendering throughput (Mrays/s) for all three benchmark
 * scenes under PDOM block scheduling, PDOM warp scheduling, and dynamic
 * micro-kernels. The paper's headline: dynamic averages ~1.4x over
 * traditional hardware; PDOM Warp beats PDOM Block.
 */

#include "bench_common.hpp"

using namespace uksim;
using namespace uksim::bench;
using namespace uksim::harness;

namespace {

struct Cell {
    double mrays = 0;
    double ipc = 0;
    double eff = 0;
};
std::map<std::string, std::map<std::string, Cell>> g_grid;
// Chip statistics summed across all scenes, per approach.
std::map<std::string, SimStats> g_aggregate;

void
runPoint(benchmark::State &state, const std::string &scene,
         KernelKind kernel, SchedulingMode sched, const char *column)
{
    ExperimentConfig cfg = baseExperiment();
    cfg.sceneName = scene;
    cfg.kernel = kernel;
    cfg.scheduling = sched;
    ExperimentResult r = runCounted(state, cfg);
    g_grid[scene][column] = {r.mraysPerSec, r.ipc, r.simtEfficiency};
    g_aggregate[column] += r.stats;
}

} // namespace

int
main(int argc, char **argv)
{
    for (const std::string &scene : rt::benchmarkSceneNames()) {
        benchmark::RegisterBenchmark(
            ("Fig8/" + scene + "/PDOM_Block").c_str(),
            [scene](benchmark::State &st) {
                runPoint(st, scene, KernelKind::Traditional,
                         SchedulingMode::Block, "PDOM Block");
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
        benchmark::RegisterBenchmark(
            ("Fig8/" + scene + "/PDOM_Warp").c_str(),
            [scene](benchmark::State &st) {
                runPoint(st, scene, KernelKind::Traditional,
                         SchedulingMode::Thread, "PDOM Warp");
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
        benchmark::RegisterBenchmark(
            ("Fig8/" + scene + "/Dynamic_uKernel").c_str(),
            [scene](benchmark::State &st) {
                runPoint(st, scene, KernelKind::MicroKernel,
                         SchedulingMode::Thread, "Dynamic");
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }

    initBench(argc, argv);
    printHeader("Figure 8: Mrays/s per scene and branching/scheduling "
                "method");
    benchmark::RunSpecifiedBenchmarks();

    harness::TextTable t;
    t.header({"benchmark", "PDOM Block", "PDOM Warp", "Dynamic",
              "Dyn/Block", "Dyn/Warp"});
    double geoBlock = 1.0, geoWarp = 1.0;
    int n = 0;
    for (const std::string &scene : rt::benchmarkSceneNames()) {
        auto &row = g_grid[scene];
        double rb = row["Dynamic"].mrays / row["PDOM Block"].mrays;
        double rw = row["Dynamic"].mrays / row["PDOM Warp"].mrays;
        geoBlock *= rb;
        geoWarp *= rw;
        n++;
        t.row({scene, harness::fmt(row["PDOM Block"].mrays, 1),
               harness::fmt(row["PDOM Warp"].mrays, 1),
               harness::fmt(row["Dynamic"].mrays, 1),
               harness::fmt(rb, 2), harness::fmt(rw, 2)});
    }
    std::printf("%s", t.str().c_str());
    std::printf("\ngeomean speedup: dynamic vs block %.2fx, vs warp "
                "%.2fx (paper: ~1.4x average, 47 -> 67 Mrays/s)\n",
                std::pow(geoBlock, 1.0 / n), std::pow(geoWarp, 1.0 / n));

    harness::TextTable e;
    e.header({"benchmark", "PDOM eff", "Dynamic eff", "PDOM IPC",
              "Dynamic IPC"});
    for (const std::string &scene : rt::benchmarkSceneNames()) {
        auto &row = g_grid[scene];
        e.row({scene, harness::fmt(row["PDOM Warp"].eff, 2),
               harness::fmt(row["Dynamic"].eff, 2),
               harness::fmt(row["PDOM Warp"].ipc, 0),
               harness::fmt(row["Dynamic"].ipc, 0)});
    }
    std::printf("\n%s", e.str().c_str());

    // Whole-suite aggregate (SimStats::operator+= across scenes): the
    // cycle-weighted IPC/efficiency over all three scenes per approach.
    harness::TextTable a;
    a.header({"approach (all scenes)", "IPC", "SIMT eff",
              "issue eff"});
    for (const auto &[column, stats] : g_aggregate) {
        GpuConfig base;
        a.row({column, harness::fmt(stats.ipc(), 0),
               harness::fmt(stats.simtEfficiency(base.warpSize), 2),
               harness::fmt(stats.stall.issueEfficiency(), 2)});
    }
    std::printf("\n%s", a.str().c_str());
    writeCsvIfRequested();
    return 0;
}
