/**
 * @file
 * Table IV: memory bandwidth required to draw a single image without
 * caching, computed — exactly as the paper computes it — from the
 * number of down-traversals and intersection tests per frame, for the
 * traditional and dynamic kernels. Also cross-checks against the
 * simulator's measured spawn-memory traffic.
 */

#include "bench_common.hpp"

using namespace uksim;
using namespace uksim::bench;
using namespace uksim::harness;

namespace {

std::map<std::string, rt::TraversalCounters> g_counters;
std::map<std::string, uint64_t> g_rays;

void
registerCount(const std::string &scene)
{
    benchmark::RegisterBenchmark(
        ("Table4/reference_frame/" + scene).c_str(),
        [scene](benchmark::State &st) {
            ExperimentConfig cfg = baseExperiment();
            PreparedScene &p = sceneCache().get(scene, cfg.sceneParams);
            for (auto _ : st) {
                rt::RenderResult r =
                    rt::renderReference(p.tree, p.scene.camera);
                g_counters[scene] = r.totals;
                g_rays[scene] =
                    uint64_t(r.width) * uint64_t(r.height);
            }
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
}

std::string
mb(double bytes)
{
    return harness::fmt(bytes / 1e6, 1) + " MB";
}

} // namespace

int
main(int argc, char **argv)
{
    for (const std::string &scene : rt::benchmarkSceneNames())
        registerCount(scene);

    initBench(argc, argv);
    printHeader("Table IV: per-frame memory bandwidth, no caching "
                "(computed from traversal/intersection counts)");
    benchmark::RunSpecifiedBenchmarks();

    harness::TextTable t;
    t.header({"benchmark", "Reading", "Writing", "Total"});
    double readRatioSum = 0, totalRatioSum = 0;
    for (const std::string &scene : rt::benchmarkSceneNames()) {
        const rt::TraversalCounters &c = g_counters[scene];
        uint64_t rays = g_rays[scene];
        rt::BandwidthEstimate trad =
            rt::estimateTraditionalBandwidth(c, rays);
        rt::BandwidthEstimate dyn = rt::estimateDynamicBandwidth(c, rays);
        t.row({scene + " Traditional", mb(trad.readBytes),
               mb(trad.writeBytes), mb(trad.totalBytes())});
        t.row({scene + " Dynamic", mb(dyn.readBytes),
               mb(dyn.writeBytes), mb(dyn.totalBytes())});
        readRatioSum += dyn.readBytes / trad.readBytes;
        totalRatioSum += dyn.totalBytes() / trad.totalBytes();
    }
    std::printf("%s", t.str().c_str());
    std::printf("\naverage increase: reading %.1fx (paper 4.4x), total "
                "%.1fx (paper 7.3x)\n",
                readRatioSum / 3.0, totalRatioSum / 3.0);
    std::printf("(state passing happens in on-chip spawn memory in the "
                "simulator; the table charges it as memory traffic "
                "exactly like the paper does)\n");
    writeCsvIfRequested();
    return 0;
}
