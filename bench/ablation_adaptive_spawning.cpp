/**
 * @file
 * Ablation: the paper's Sec. IX future-work proposal — "allowing
 * branching instead of thread creation when all threads in a warp
 * follow the same branch" — versus the naive every-iteration spawning
 * evaluated in the paper, across all three scenes.
 */

#include "bench_common.hpp"

using namespace uksim;
using namespace uksim::bench;
using namespace uksim::harness;

namespace {

struct Row {
    ExperimentResult naive;
    ExperimentResult adaptive;
};
std::map<std::string, Row> g_rows;

void
runPoint(benchmark::State &state, const std::string &scene, bool adaptive)
{
    ExperimentConfig cfg = baseExperiment();
    cfg.sceneName = scene;
    cfg.kernel = adaptive ? KernelKind::MicroKernelAdaptive
                          : KernelKind::MicroKernel;
    ExperimentResult r = runCounted(state, cfg);
    if (adaptive)
        g_rows[scene].adaptive = r;
    else
        g_rows[scene].naive = r;
}

} // namespace

int
main(int argc, char **argv)
{
    for (const std::string &scene : rt::benchmarkSceneNames()) {
        benchmark::RegisterBenchmark(
            ("Ablation/naive_spawn/" + scene).c_str(),
            [scene](benchmark::State &st) { runPoint(st, scene, false); })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
        benchmark::RegisterBenchmark(
            ("Ablation/adaptive_spawn/" + scene).c_str(),
            [scene](benchmark::State &st) { runPoint(st, scene, true); })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }

    initBench(argc, argv);
    printHeader("Ablation: naive vs adaptive (vote-gated) spawning");
    benchmark::RunSpecifiedBenchmarks();

    harness::TextTable t;
    t.header({"scene", "naive Mrays/s", "adaptive Mrays/s", "speedup",
              "naive spawns", "adaptive spawns", "spawn reduction"});
    for (const std::string &scene : rt::benchmarkSceneNames()) {
        const Row &r = g_rows[scene];
        double spawnRed =
            1.0 - double(r.adaptive.stats.dynamicThreadsSpawned) /
                      double(r.naive.stats.dynamicThreadsSpawned);
        t.row({scene, harness::fmt(r.naive.mraysPerSec, 1),
               harness::fmt(r.adaptive.mraysPerSec, 1),
               harness::fmt(r.adaptive.mraysPerSec / r.naive.mraysPerSec,
                            2),
               std::to_string(r.naive.stats.dynamicThreadsSpawned),
               std::to_string(r.adaptive.stats.dynamicThreadsSpawned),
               harness::fmt(100.0 * spawnRed, 1) + "%"});
    }
    std::printf("%s", t.str().c_str());
    std::printf("\n(the paper predicts this 'more advanced algorithm' "
                "improves on naive spawning by avoiding the state "
                "save/restore when a warp stays uniform)\n");
    writeCsvIfRequested();
    return 0;
}
