/**
 * @file
 * Shared helpers for the per-figure benchmark binaries.
 *
 * Every binary prints the Table I configuration header, runs its
 * experiments through google-benchmark (one iteration per experiment —
 * the interesting output is the simulated statistics, exported as
 * benchmark counters and as a paper-style text table).
 *
 * Environment knobs: UKSIM_CYCLES, UKSIM_DETAIL, UKSIM_RES, UKSIM_SMS
 * scale the runs down for quick smoke tests.
 *
 * Every binary also accepts `--csv <path>`: headline metrics of each
 * benchmark run are mirrored into a shared trace::Registry and written
 * as machine-readable CSV on exit (for plotting scripts, instead of
 * scraping the text tables).
 */

#ifndef UKSIM_BENCH_BENCH_COMMON_HPP
#define UKSIM_BENCH_BENCH_COMMON_HPP

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "trace/registry.hpp"

namespace uksim::bench {

/**
 * Strip uksim-specific flags (`--csv <path>`) out of argv, then hand
 * the rest to benchmark::Initialize. Call instead of Initialize.
 */
void initBench(int &argc, char **argv);

/** Registry the binary's headline metrics accumulate into. */
trace::Registry &benchRegistry();

/** Write benchRegistry() to the `--csv` path (no-op without the flag). */
void writeCsvIfRequested();

/** Scene cache so each binary builds every kd-tree only once. */
class SceneCache
{
  public:
    harness::PreparedScene &
    get(const std::string &name, const rt::SceneParams &params)
    {
        auto it = scenes_.find(name);
        if (it == scenes_.end()) {
            it = scenes_
                     .emplace(name, harness::prepareScene(name, params))
                     .first;
        }
        return it->second;
    }

  private:
    std::map<std::string, harness::PreparedScene> scenes_;
};

inline SceneCache &
sceneCache()
{
    static SceneCache cache;
    return cache;
}

/** Default experiment point with env overrides applied. */
inline harness::ExperimentConfig
baseExperiment()
{
    harness::ExperimentConfig cfg;
    harness::applyEnvOverrides(cfg);
    return cfg;
}

/** Registry-safe dotted key from an arbitrary label. */
std::string registryKey(const std::string &label);

/** Run one experiment and export its stats as benchmark counters. */
inline harness::ExperimentResult
runCounted(benchmark::State &state, const harness::ExperimentConfig &cfg)
{
    harness::ExperimentResult result;
    for (auto _ : state) {
        result = harness::runExperiment(
            sceneCache().get(cfg.sceneName, cfg.sceneParams), cfg);
    }
    state.counters["Mrays_per_s"] = result.mraysPerSec;
    state.counters["IPC"] = result.ipc;
    state.counters["SIMT_eff"] = result.simtEfficiency;

    const std::string key =
        registryKey(cfg.label() + "." + cfg.sceneName);
    trace::Registry &reg = benchRegistry();
    reg.set(key + ".mrays_per_s", result.mraysPerSec);
    reg.set(key + ".ipc", result.ipc);
    reg.set(key + ".simt_efficiency", result.simtEfficiency);
    reg.set(key + ".cycles", double(result.stats.cycles));
    reg.set(key + ".issue_efficiency",
            result.stats.stall.issueEfficiency());
    return result;
}

/** Print the standard header (paper Table I). */
inline void
printHeader(const char *title)
{
    harness::ExperimentConfig cfg = baseExperiment();
    std::printf("\n=== %s ===\n%s\n", title,
                harness::describeConfig(cfg.baseConfig).c_str());
    std::printf("scene detail=%d, %dx%d rays, %llu cycles simulated\n\n",
                cfg.sceneParams.detail, cfg.sceneParams.imageWidth,
                cfg.sceneParams.imageHeight,
                static_cast<unsigned long long>(cfg.maxCycles));
}

/**
 * Print an AerialVision-style divergence breakdown (Figs. 3/7/9): for
 * each time window, the share of issued warps per occupancy bin, as a
 * compact textual heat map plus a CSV appendix.
 */
void printDivergenceSeries(const SimStats &stats, const char *label);

} // namespace uksim::bench

#endif // UKSIM_BENCH_BENCH_COMMON_HPP
