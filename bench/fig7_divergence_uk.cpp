/**
 * @file
 * Figure 7: divergence breakdown with dynamic micro-kernels and a
 * conflict-free spawn memory (the paper's primary efficiency result:
 * IPC 615 vs 326 on conference, 1.9x).
 */

#include "bench_common.hpp"

using namespace uksim;
using namespace uksim::bench;
using namespace uksim::harness;

namespace {

ExperimentResult g_pdom;
ExperimentResult g_uk;

void
BM_Fig7_PdomBaseline(benchmark::State &state)
{
    ExperimentConfig cfg = baseExperiment();
    cfg.sceneName = "conference";
    cfg.kernel = KernelKind::Traditional;
    g_pdom = runCounted(state, cfg);
}

void
BM_Fig7_MicroKernel(benchmark::State &state)
{
    ExperimentConfig cfg = baseExperiment();
    cfg.sceneName = "conference";
    cfg.kernel = KernelKind::MicroKernel;
    cfg.spawnBankConflicts = false;     // Fig. 7 assumption
    g_uk = runCounted(state, cfg);
}

} // namespace

BENCHMARK(BM_Fig7_PdomBaseline)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Fig7_MicroKernel)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    printHeader("Figure 7: u-kernel divergence breakdown, "
                "conflict-free spawn memory (conference)");
    benchmark::RunSpecifiedBenchmarks();

    printDivergenceSeries(g_uk.stats, "dynamic u-kernels (no conflicts)");

    std::printf("IPC: PDOM %.0f -> u-kernel %.0f (%.2fx; paper 326 -> "
                "615, 1.9x)\n",
                g_pdom.ipc, g_uk.ipc, g_uk.ipc / g_pdom.ipc);
    std::printf("SIMT efficiency: %.2f -> %.2f\n",
                g_pdom.simtEfficiency, g_uk.simtEfficiency);
    std::printf("dynamic threads spawned: %llu, warps formed: %llu, "
                "partial flushes: %llu\n",
                (unsigned long long)g_uk.stats.dynamicThreadsSpawned,
                (unsigned long long)g_uk.stats.dynamicWarpsFormed,
                (unsigned long long)g_uk.stats.partialWarpFlushes);
    writeCsvIfRequested();
    return 0;
}
