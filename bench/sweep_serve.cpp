/**
 * @file
 * sweep_serve — drive a paper-style configuration sweep through the
 * serve batch engine.
 *
 * Builds the cross product of kernels x scenes as one batch and runs
 * it twice through a ServerEngine sharing one result cache: the first
 * pass computes (deduplicating scenes/kd-trees across jobs), the
 * second pass must be 100% cache hits. That is the serve subsystem's
 * value proposition for figure regeneration — tweak one experiment
 * point, re-run the sweep, and only that point recomputes — and the
 * bench asserts it instead of assuming it (exit 1 when the second
 * pass misses or any job fails).
 *
 * Usage: sweep_serve [--smoke] [--cache DIR] [--workers N]
 *                    [--cycles N] [--detail N] [--res N] [--sms N]
 *
 *   --smoke    tiny scaled-down sweep (2 kernels x 2 scenes, small
 *              scene/cycle budget) for CI
 *   --cache    cache directory (default: BENCH_sweep_cache)
 *   --workers  worker processes (default 0 = in-process)
 *
 * Exit status: 0 when both passes succeed and the second is all
 * cache hits, 1 otherwise, 2 on usage errors.
 */

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "harness/cli_args.hpp"
#include "serve/engine.hpp"

using namespace uksim;

namespace {

struct Options {
    bool smoke = false;
    std::string cacheDir = "BENCH_sweep_cache";
    int workers = 0;
    uint64_t cycles = 0;
    int detail = 0;
    int res = 0;
    int sms = 0;
};

void
usage(std::FILE *out)
{
    std::fprintf(out,
                 "usage: sweep_serve [--smoke] [--cache DIR] "
                 "[--workers N]\n"
                 "                   [--cycles N] [--detail N] [--res N] "
                 "[--sms N]\n");
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    harness::cli::ArgReader args("sweep_serve", argc, argv);
    while (args.next()) {
        if (args.isHelp()) {
            usage(stdout);
            std::exit(0);
        } else if (args.is("--smoke")) {
            opts.smoke = true;
        } else if (args.is("--cache")) {
            opts.cacheDir = args.value();
        } else if (args.is("--workers")) {
            opts.workers = args.i32();
        } else if (args.is("--cycles")) {
            opts.cycles = args.u64();
        } else if (args.is("--detail")) {
            opts.detail = args.i32();
        } else if (args.is("--res")) {
            opts.res = args.i32();
        } else if (args.is("--sms")) {
            opts.sms = args.i32();
        } else {
            args.unknown(usage);
        }
    }
    return opts;
}

std::vector<serve::JobSpec>
buildSweep(const Options &opts)
{
    const std::vector<std::string> kernels =
        opts.smoke ? std::vector<std::string>{"pdom", "uk"}
                   : std::vector<std::string>{"pdom", "uk", "uk_banked",
                                              "uk_adaptive", "pt"};
    const std::vector<std::string> scenes =
        opts.smoke ? std::vector<std::string>{"conference", "atrium"}
                   : std::vector<std::string>{"conference", "fairyforest",
                                              "atrium"};
    std::vector<serve::JobSpec> jobs;
    for (const std::string &k : kernels) {
        for (const std::string &s : scenes) {
            serve::JobSpec spec;
            spec.name = k + "_" + s;
            spec.label = spec.name;
            spec.cycles = opts.cycles ? opts.cycles
                          : opts.smoke ? 6000
                                       : 0;
            spec.detail = opts.detail ? opts.detail : opts.smoke ? 2 : 0;
            spec.res = opts.res ? opts.res : opts.smoke ? 16 : 0;
            spec.sms = opts.sms ? opts.sms : opts.smoke ? 2 : 0;
            jobs.push_back(spec);
        }
    }
    return jobs;
}

int
runPass(serve::ServerEngine &engine,
        const std::vector<serve::JobSpec> &jobs, const char *label,
        bool expectAllHits)
{
    const serve::BatchManifest m = engine.runBatch(jobs, nullptr);
    std::printf("sweep_serve: %s: %d computed, %d cache hits, %d failed\n",
                label, m.computed, m.cacheHits, m.failed);
    for (const serve::JobReport &r : m.jobs) {
        std::printf("  %-24s %-11s %s cycles=%llu items=%llu ipc=%.3f\n",
                    r.spec.label.c_str(), r.outcome.c_str(),
                    r.cacheHit ? "hit " : "miss",
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.items), r.ipc);
    }
    if (m.failed > 0) {
        std::fprintf(stderr, "sweep_serve: %s: %d job(s) failed\n", label,
                     m.failed);
        return 1;
    }
    if (expectAllHits && m.computed != 0) {
        std::fprintf(stderr,
                     "sweep_serve: %s: expected all cache hits, got %d "
                     "computed\n",
                     label, m.computed);
        return 1;
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    try {
        serve::EngineOptions eo;
        eo.cacheDir = opts.cacheDir;
        eo.workers = opts.workers;
        serve::ServerEngine engine(eo);
        const std::vector<serve::JobSpec> jobs = buildSweep(opts);
        if (int rc = runPass(engine, jobs, "pass 1", false))
            return rc;
        if (int rc = runPass(engine, jobs, "pass 2 (cached)", true))
            return rc;
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sweep_serve: %s\n", e.what());
        return 1;
    }
}
