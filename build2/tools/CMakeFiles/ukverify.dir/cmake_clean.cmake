file(REMOVE_RECURSE
  "CMakeFiles/ukverify.dir/ukverify.cpp.o"
  "CMakeFiles/ukverify.dir/ukverify.cpp.o.d"
  "ukverify"
  "ukverify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ukverify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
