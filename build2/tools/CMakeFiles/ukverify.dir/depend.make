# Empty dependencies file for ukverify.
# This may be replaced when dependencies are built.
