# Empty compiler generated dependencies file for uktrace.
# This may be replaced when dependencies are built.
