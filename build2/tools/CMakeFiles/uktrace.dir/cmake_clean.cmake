file(REMOVE_RECURSE
  "CMakeFiles/uktrace.dir/uktrace.cpp.o"
  "CMakeFiles/uktrace.dir/uktrace.cpp.o.d"
  "uktrace"
  "uktrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uktrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
