# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build2/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(verify_kernels "/root/repo/build2/tools/ukverify" "--builtin" "--werror")
set_tests_properties(verify_kernels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(uktrace_invariant "/root/repo/build2/tools/uktrace" "--config" "uk_conference" "--cycles" "4000" "--csv" "uktrace_test.csv" "--trace" "uktrace_test.trace.json")
set_tests_properties(uktrace_invariant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
