# Empty compiler generated dependencies file for table4_bandwidth.
# This may be replaced when dependencies are built.
