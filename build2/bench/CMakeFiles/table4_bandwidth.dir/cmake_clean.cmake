file(REMOVE_RECURSE
  "CMakeFiles/table4_bandwidth.dir/table4_bandwidth.cpp.o"
  "CMakeFiles/table4_bandwidth.dir/table4_bandwidth.cpp.o.d"
  "table4_bandwidth"
  "table4_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
