file(REMOVE_RECURSE
  "libuksim_bench_common.a"
)
