# Empty compiler generated dependencies file for uksim_bench_common.
# This may be replaced when dependencies are built.
