file(REMOVE_RECURSE
  "CMakeFiles/uksim_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/uksim_bench_common.dir/bench_common.cpp.o.d"
  "libuksim_bench_common.a"
  "libuksim_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uksim_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
