# Empty compiler generated dependencies file for fig3_divergence_pdom.
# This may be replaced when dependencies are built.
