file(REMOVE_RECURSE
  "CMakeFiles/fig3_divergence_pdom.dir/fig3_divergence_pdom.cpp.o"
  "CMakeFiles/fig3_divergence_pdom.dir/fig3_divergence_pdom.cpp.o.d"
  "fig3_divergence_pdom"
  "fig3_divergence_pdom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_divergence_pdom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
