file(REMOVE_RECURSE
  "CMakeFiles/fig10_branching_performance.dir/fig10_branching_performance.cpp.o"
  "CMakeFiles/fig10_branching_performance.dir/fig10_branching_performance.cpp.o.d"
  "fig10_branching_performance"
  "fig10_branching_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_branching_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
