file(REMOVE_RECURSE
  "CMakeFiles/fig8_rays_per_second.dir/fig8_rays_per_second.cpp.o"
  "CMakeFiles/fig8_rays_per_second.dir/fig8_rays_per_second.cpp.o.d"
  "fig8_rays_per_second"
  "fig8_rays_per_second.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_rays_per_second.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
