# Empty dependencies file for fig8_rays_per_second.
# This may be replaced when dependencies are built.
