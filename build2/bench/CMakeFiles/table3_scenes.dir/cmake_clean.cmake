file(REMOVE_RECURSE
  "CMakeFiles/table3_scenes.dir/table3_scenes.cpp.o"
  "CMakeFiles/table3_scenes.dir/table3_scenes.cpp.o.d"
  "table3_scenes"
  "table3_scenes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_scenes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
