# Empty dependencies file for table3_scenes.
# This may be replaced when dependencies are built.
