# Empty compiler generated dependencies file for ablation_related_work.
# This may be replaced when dependencies are built.
