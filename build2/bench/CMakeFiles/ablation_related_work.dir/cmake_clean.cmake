file(REMOVE_RECURSE
  "CMakeFiles/ablation_related_work.dir/ablation_related_work.cpp.o"
  "CMakeFiles/ablation_related_work.dir/ablation_related_work.cpp.o.d"
  "ablation_related_work"
  "ablation_related_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_related_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
