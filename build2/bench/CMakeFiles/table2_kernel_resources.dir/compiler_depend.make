# Empty compiler generated dependencies file for table2_kernel_resources.
# This may be replaced when dependencies are built.
