# Empty dependencies file for fig9_divergence_uk_conflicts.
# This may be replaced when dependencies are built.
