file(REMOVE_RECURSE
  "CMakeFiles/fig9_divergence_uk_conflicts.dir/fig9_divergence_uk_conflicts.cpp.o"
  "CMakeFiles/fig9_divergence_uk_conflicts.dir/fig9_divergence_uk_conflicts.cpp.o.d"
  "fig9_divergence_uk_conflicts"
  "fig9_divergence_uk_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_divergence_uk_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
