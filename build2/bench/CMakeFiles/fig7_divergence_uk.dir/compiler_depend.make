# Empty compiler generated dependencies file for fig7_divergence_uk.
# This may be replaced when dependencies are built.
