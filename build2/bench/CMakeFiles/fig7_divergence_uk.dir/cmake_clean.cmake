file(REMOVE_RECURSE
  "CMakeFiles/fig7_divergence_uk.dir/fig7_divergence_uk.cpp.o"
  "CMakeFiles/fig7_divergence_uk.dir/fig7_divergence_uk.cpp.o.d"
  "fig7_divergence_uk"
  "fig7_divergence_uk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_divergence_uk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
