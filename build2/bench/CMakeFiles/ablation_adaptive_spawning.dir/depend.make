# Empty dependencies file for ablation_adaptive_spawning.
# This may be replaced when dependencies are built.
