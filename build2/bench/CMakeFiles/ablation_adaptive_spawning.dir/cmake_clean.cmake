file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_spawning.dir/ablation_adaptive_spawning.cpp.o"
  "CMakeFiles/ablation_adaptive_spawning.dir/ablation_adaptive_spawning.cpp.o.d"
  "ablation_adaptive_spawning"
  "ablation_adaptive_spawning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_spawning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
