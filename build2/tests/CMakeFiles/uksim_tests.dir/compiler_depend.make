# Empty compiler generated dependencies file for uksim_tests.
# This may be replaced when dependencies are built.
