
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive_uk.cpp" "tests/CMakeFiles/uksim_tests.dir/test_adaptive_uk.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_adaptive_uk.cpp.o.d"
  "/root/repo/tests/test_assembler.cpp" "tests/CMakeFiles/uksim_tests.dir/test_assembler.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_assembler.cpp.o.d"
  "/root/repo/tests/test_assembler_errors.cpp" "tests/CMakeFiles/uksim_tests.dir/test_assembler_errors.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_assembler_errors.cpp.o.d"
  "/root/repo/tests/test_cfg.cpp" "tests/CMakeFiles/uksim_tests.dir/test_cfg.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_cfg.cpp.o.d"
  "/root/repo/tests/test_executor.cpp" "tests/CMakeFiles/uksim_tests.dir/test_executor.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_executor.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/uksim_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_integration_render.cpp" "tests/CMakeFiles/uksim_tests.dir/test_integration_render.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_integration_render.cpp.o.d"
  "/root/repo/tests/test_kdtree.cpp" "tests/CMakeFiles/uksim_tests.dir/test_kdtree.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_kdtree.cpp.o.d"
  "/root/repo/tests/test_memory.cpp" "tests/CMakeFiles/uksim_tests.dir/test_memory.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_memory.cpp.o.d"
  "/root/repo/tests/test_mimd.cpp" "tests/CMakeFiles/uksim_tests.dir/test_mimd.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_mimd.cpp.o.d"
  "/root/repo/tests/test_persistent_threads.cpp" "tests/CMakeFiles/uksim_tests.dir/test_persistent_threads.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_persistent_threads.cpp.o.d"
  "/root/repo/tests/test_rocache.cpp" "tests/CMakeFiles/uksim_tests.dir/test_rocache.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_rocache.cpp.o.d"
  "/root/repo/tests/test_rt_math.cpp" "tests/CMakeFiles/uksim_tests.dir/test_rt_math.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_rt_math.cpp.o.d"
  "/root/repo/tests/test_scenes.cpp" "tests/CMakeFiles/uksim_tests.dir/test_scenes.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_scenes.cpp.o.d"
  "/root/repo/tests/test_scheduling.cpp" "tests/CMakeFiles/uksim_tests.dir/test_scheduling.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_scheduling.cpp.o.d"
  "/root/repo/tests/test_simt_stack.cpp" "tests/CMakeFiles/uksim_tests.dir/test_simt_stack.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_simt_stack.cpp.o.d"
  "/root/repo/tests/test_sm_exec.cpp" "tests/CMakeFiles/uksim_tests.dir/test_sm_exec.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_sm_exec.cpp.o.d"
  "/root/repo/tests/test_spawn_exec.cpp" "tests/CMakeFiles/uksim_tests.dir/test_spawn_exec.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_spawn_exec.cpp.o.d"
  "/root/repo/tests/test_spawn_layout.cpp" "tests/CMakeFiles/uksim_tests.dir/test_spawn_layout.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_spawn_layout.cpp.o.d"
  "/root/repo/tests/test_spawn_unit.cpp" "tests/CMakeFiles/uksim_tests.dir/test_spawn_unit.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_spawn_unit.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/uksim_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/uksim_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_verifier.cpp" "tests/CMakeFiles/uksim_tests.dir/test_verifier.cpp.o" "gcc" "tests/CMakeFiles/uksim_tests.dir/test_verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/harness/CMakeFiles/uksim_harness.dir/DependInfo.cmake"
  "/root/repo/build2/examples/CMakeFiles/uksim_example_kernels.dir/DependInfo.cmake"
  "/root/repo/build2/src/kernels/CMakeFiles/uksim_kernels.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/uksim_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/rt/CMakeFiles/uksim_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
