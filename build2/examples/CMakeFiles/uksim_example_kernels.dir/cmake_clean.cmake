file(REMOVE_RECURSE
  "CMakeFiles/uksim_example_kernels.dir/example_kernels.cpp.o"
  "CMakeFiles/uksim_example_kernels.dir/example_kernels.cpp.o.d"
  "libuksim_example_kernels.a"
  "libuksim_example_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uksim_example_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
