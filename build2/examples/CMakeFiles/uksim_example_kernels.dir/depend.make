# Empty dependencies file for uksim_example_kernels.
# This may be replaced when dependencies are built.
