file(REMOVE_RECURSE
  "libuksim_example_kernels.a"
)
