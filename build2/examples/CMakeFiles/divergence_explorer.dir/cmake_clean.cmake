file(REMOVE_RECURSE
  "CMakeFiles/divergence_explorer.dir/divergence_explorer.cpp.o"
  "CMakeFiles/divergence_explorer.dir/divergence_explorer.cpp.o.d"
  "divergence_explorer"
  "divergence_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/divergence_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
