# Empty compiler generated dependencies file for divergence_explorer.
# This may be replaced when dependencies are built.
