# Empty dependencies file for render_scene.
# This may be replaced when dependencies are built.
