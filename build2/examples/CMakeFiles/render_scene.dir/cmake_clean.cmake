file(REMOVE_RECURSE
  "CMakeFiles/render_scene.dir/render_scene.cpp.o"
  "CMakeFiles/render_scene.dir/render_scene.cpp.o.d"
  "render_scene"
  "render_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
