# Empty compiler generated dependencies file for spawn_collatz.
# This may be replaced when dependencies are built.
