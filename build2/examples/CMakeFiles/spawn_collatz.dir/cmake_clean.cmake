file(REMOVE_RECURSE
  "CMakeFiles/spawn_collatz.dir/spawn_collatz.cpp.o"
  "CMakeFiles/spawn_collatz.dir/spawn_collatz.cpp.o.d"
  "spawn_collatz"
  "spawn_collatz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spawn_collatz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
