file(REMOVE_RECURSE
  "CMakeFiles/uksim_kernels.dir/kernel_resources.cpp.o"
  "CMakeFiles/uksim_kernels.dir/kernel_resources.cpp.o.d"
  "CMakeFiles/uksim_kernels.dir/raytrace_kernels.cpp.o"
  "CMakeFiles/uksim_kernels.dir/raytrace_kernels.cpp.o.d"
  "CMakeFiles/uksim_kernels.dir/scene_upload.cpp.o"
  "CMakeFiles/uksim_kernels.dir/scene_upload.cpp.o.d"
  "libuksim_kernels.a"
  "libuksim_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uksim_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
