file(REMOVE_RECURSE
  "libuksim_kernels.a"
)
