
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/kernel_resources.cpp" "src/kernels/CMakeFiles/uksim_kernels.dir/kernel_resources.cpp.o" "gcc" "src/kernels/CMakeFiles/uksim_kernels.dir/kernel_resources.cpp.o.d"
  "/root/repo/src/kernels/raytrace_kernels.cpp" "src/kernels/CMakeFiles/uksim_kernels.dir/raytrace_kernels.cpp.o" "gcc" "src/kernels/CMakeFiles/uksim_kernels.dir/raytrace_kernels.cpp.o.d"
  "/root/repo/src/kernels/scene_upload.cpp" "src/kernels/CMakeFiles/uksim_kernels.dir/scene_upload.cpp.o" "gcc" "src/kernels/CMakeFiles/uksim_kernels.dir/scene_upload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/uksim_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/rt/CMakeFiles/uksim_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
