# Empty compiler generated dependencies file for uksim_kernels.
# This may be replaced when dependencies are built.
