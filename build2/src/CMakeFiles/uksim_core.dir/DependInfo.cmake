
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/bank.cpp" "src/CMakeFiles/uksim_core.dir/mem/bank.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/mem/bank.cpp.o.d"
  "/root/repo/src/mem/coalescer.cpp" "src/CMakeFiles/uksim_core.dir/mem/coalescer.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/mem/coalescer.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/CMakeFiles/uksim_core.dir/mem/dram.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/mem/dram.cpp.o.d"
  "/root/repo/src/mem/rocache.cpp" "src/CMakeFiles/uksim_core.dir/mem/rocache.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/mem/rocache.cpp.o.d"
  "/root/repo/src/simt/assembler.cpp" "src/CMakeFiles/uksim_core.dir/simt/assembler.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/simt/assembler.cpp.o.d"
  "/root/repo/src/simt/cfg.cpp" "src/CMakeFiles/uksim_core.dir/simt/cfg.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/simt/cfg.cpp.o.d"
  "/root/repo/src/simt/executor.cpp" "src/CMakeFiles/uksim_core.dir/simt/executor.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/simt/executor.cpp.o.d"
  "/root/repo/src/simt/gpu.cpp" "src/CMakeFiles/uksim_core.dir/simt/gpu.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/simt/gpu.cpp.o.d"
  "/root/repo/src/simt/isa.cpp" "src/CMakeFiles/uksim_core.dir/simt/isa.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/simt/isa.cpp.o.d"
  "/root/repo/src/simt/mimd.cpp" "src/CMakeFiles/uksim_core.dir/simt/mimd.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/simt/mimd.cpp.o.d"
  "/root/repo/src/simt/program.cpp" "src/CMakeFiles/uksim_core.dir/simt/program.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/simt/program.cpp.o.d"
  "/root/repo/src/simt/simt_stack.cpp" "src/CMakeFiles/uksim_core.dir/simt/simt_stack.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/simt/simt_stack.cpp.o.d"
  "/root/repo/src/simt/sm.cpp" "src/CMakeFiles/uksim_core.dir/simt/sm.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/simt/sm.cpp.o.d"
  "/root/repo/src/simt/stats.cpp" "src/CMakeFiles/uksim_core.dir/simt/stats.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/simt/stats.cpp.o.d"
  "/root/repo/src/simt/verifier.cpp" "src/CMakeFiles/uksim_core.dir/simt/verifier.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/simt/verifier.cpp.o.d"
  "/root/repo/src/spawn/spawn_layout.cpp" "src/CMakeFiles/uksim_core.dir/spawn/spawn_layout.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/spawn/spawn_layout.cpp.o.d"
  "/root/repo/src/spawn/spawn_unit.cpp" "src/CMakeFiles/uksim_core.dir/spawn/spawn_unit.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/spawn/spawn_unit.cpp.o.d"
  "/root/repo/src/trace/events.cpp" "src/CMakeFiles/uksim_core.dir/trace/events.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/trace/events.cpp.o.d"
  "/root/repo/src/trace/export.cpp" "src/CMakeFiles/uksim_core.dir/trace/export.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/trace/export.cpp.o.d"
  "/root/repo/src/trace/registry.cpp" "src/CMakeFiles/uksim_core.dir/trace/registry.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/trace/registry.cpp.o.d"
  "/root/repo/src/trace/stall.cpp" "src/CMakeFiles/uksim_core.dir/trace/stall.cpp.o" "gcc" "src/CMakeFiles/uksim_core.dir/trace/stall.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
