file(REMOVE_RECURSE
  "libuksim_core.a"
)
