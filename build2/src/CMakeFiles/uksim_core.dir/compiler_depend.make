# Empty compiler generated dependencies file for uksim_core.
# This may be replaced when dependencies are built.
