file(REMOVE_RECURSE
  "libuksim_rt.a"
)
