file(REMOVE_RECURSE
  "CMakeFiles/uksim_rt.dir/camera.cpp.o"
  "CMakeFiles/uksim_rt.dir/camera.cpp.o.d"
  "CMakeFiles/uksim_rt.dir/cpu_tracer.cpp.o"
  "CMakeFiles/uksim_rt.dir/cpu_tracer.cpp.o.d"
  "CMakeFiles/uksim_rt.dir/image.cpp.o"
  "CMakeFiles/uksim_rt.dir/image.cpp.o.d"
  "CMakeFiles/uksim_rt.dir/kdtree.cpp.o"
  "CMakeFiles/uksim_rt.dir/kdtree.cpp.o.d"
  "CMakeFiles/uksim_rt.dir/scene.cpp.o"
  "CMakeFiles/uksim_rt.dir/scene.cpp.o.d"
  "CMakeFiles/uksim_rt.dir/scenes.cpp.o"
  "CMakeFiles/uksim_rt.dir/scenes.cpp.o.d"
  "CMakeFiles/uksim_rt.dir/triangle.cpp.o"
  "CMakeFiles/uksim_rt.dir/triangle.cpp.o.d"
  "libuksim_rt.a"
  "libuksim_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uksim_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
