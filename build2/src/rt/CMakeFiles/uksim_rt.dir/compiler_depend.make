# Empty compiler generated dependencies file for uksim_rt.
# This may be replaced when dependencies are built.
