
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/camera.cpp" "src/rt/CMakeFiles/uksim_rt.dir/camera.cpp.o" "gcc" "src/rt/CMakeFiles/uksim_rt.dir/camera.cpp.o.d"
  "/root/repo/src/rt/cpu_tracer.cpp" "src/rt/CMakeFiles/uksim_rt.dir/cpu_tracer.cpp.o" "gcc" "src/rt/CMakeFiles/uksim_rt.dir/cpu_tracer.cpp.o.d"
  "/root/repo/src/rt/image.cpp" "src/rt/CMakeFiles/uksim_rt.dir/image.cpp.o" "gcc" "src/rt/CMakeFiles/uksim_rt.dir/image.cpp.o.d"
  "/root/repo/src/rt/kdtree.cpp" "src/rt/CMakeFiles/uksim_rt.dir/kdtree.cpp.o" "gcc" "src/rt/CMakeFiles/uksim_rt.dir/kdtree.cpp.o.d"
  "/root/repo/src/rt/scene.cpp" "src/rt/CMakeFiles/uksim_rt.dir/scene.cpp.o" "gcc" "src/rt/CMakeFiles/uksim_rt.dir/scene.cpp.o.d"
  "/root/repo/src/rt/scenes.cpp" "src/rt/CMakeFiles/uksim_rt.dir/scenes.cpp.o" "gcc" "src/rt/CMakeFiles/uksim_rt.dir/scenes.cpp.o.d"
  "/root/repo/src/rt/triangle.cpp" "src/rt/CMakeFiles/uksim_rt.dir/triangle.cpp.o" "gcc" "src/rt/CMakeFiles/uksim_rt.dir/triangle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
