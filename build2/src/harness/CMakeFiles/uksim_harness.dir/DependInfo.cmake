
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/experiment.cpp" "src/harness/CMakeFiles/uksim_harness.dir/experiment.cpp.o" "gcc" "src/harness/CMakeFiles/uksim_harness.dir/experiment.cpp.o.d"
  "/root/repo/src/harness/table.cpp" "src/harness/CMakeFiles/uksim_harness.dir/table.cpp.o" "gcc" "src/harness/CMakeFiles/uksim_harness.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/kernels/CMakeFiles/uksim_kernels.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/uksim_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/rt/CMakeFiles/uksim_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
