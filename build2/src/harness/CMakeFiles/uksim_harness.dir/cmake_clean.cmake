file(REMOVE_RECURSE
  "CMakeFiles/uksim_harness.dir/experiment.cpp.o"
  "CMakeFiles/uksim_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/uksim_harness.dir/table.cpp.o"
  "CMakeFiles/uksim_harness.dir/table.cpp.o.d"
  "libuksim_harness.a"
  "libuksim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uksim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
