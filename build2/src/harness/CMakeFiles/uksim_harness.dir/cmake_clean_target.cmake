file(REMOVE_RECURSE
  "libuksim_harness.a"
)
