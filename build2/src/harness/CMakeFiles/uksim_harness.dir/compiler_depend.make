# Empty compiler generated dependencies file for uksim_harness.
# This may be replaced when dependencies are built.
